// Unit tests for cfsf::baselines — every comparator of Tables II/III.
//
// Each baseline is tested for (a) hand-checkable mechanics on tiny
// matrices, (b) totality (predictions are finite for every query, even
// with no usable neighbours), and (c) beating the global-mean floor on
// structured synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/aspect_model.hpp"
#include "baselines/emdp.hpp"
#include "baselines/means.hpp"
#include "baselines/pd.hpp"
#include "baselines/scbpcc.hpp"
#include "baselines/sf.hpp"
#include "baselines/sir.hpp"
#include "baselines/sur.hpp"
#include "data/protocol.hpp"
#include "data/synthetic.hpp"
#include "eval/evaluate.hpp"
#include "util/error.hpp"

namespace cfsf::baselines {
namespace {

matrix::RatingMatrix TinyMatrix() {
  //      i0 i1 i2
  // u0    5  4  1
  // u1    4  5  2
  // u2    2  1  5
  // u3    1  2  4
  matrix::RatingMatrixBuilder b(4, 3);
  b.Add(0, 0, 5); b.Add(0, 1, 4); b.Add(0, 2, 1);
  b.Add(1, 0, 4); b.Add(1, 1, 5); b.Add(1, 2, 2);
  b.Add(2, 0, 2); b.Add(2, 1, 1); b.Add(2, 2, 5);
  b.Add(3, 0, 1); b.Add(3, 1, 2); b.Add(3, 2, 4);
  return b.Build();
}

data::EvalSplit MediumSplit(std::size_t given = 8) {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 150;
  config.min_ratings_per_user = 20;
  config.log_mean = 3.4;
  const auto base = data::GenerateSynthetic(config);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 80;
  pconfig.num_test_users = 40;
  pconfig.given_n = given;
  return data::MakeGivenNSplit(base, pconfig);
}

double FloorMae(const data::EvalSplit& split) {
  GlobalMeanPredictor floor;
  return eval::Evaluate(floor, split).mae;
}

void ExpectTotalAndFinite(const eval::Predictor& p,
                          const matrix::RatingMatrix& m) {
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    for (std::size_t i = 0; i < m.num_items(); ++i) {
      const double v = p.Predict(static_cast<matrix::UserId>(u),
                                 static_cast<matrix::ItemId>(i));
      ASSERT_TRUE(std::isfinite(v)) << "user " << u << " item " << i;
    }
  }
}

// --------------------------------------------------------------- means ----

TEST(Means, GlobalUserItem) {
  const auto m = TinyMatrix();
  GlobalMeanPredictor g;
  g.Fit(m);
  EXPECT_DOUBLE_EQ(g.Predict(0, 0), m.GlobalMean());
  UserMeanPredictor u;
  u.Fit(m);
  EXPECT_DOUBLE_EQ(u.Predict(2, 0), m.UserMean(2));
  ItemMeanPredictor i;
  i.Fit(m);
  EXPECT_DOUBLE_EQ(i.Predict(0, 2), m.ItemMean(2));
}

// ----------------------------------------------------------------- SIR ----

TEST(Sir, WeightedAverageOfSimilarItems) {
  const auto m = TinyMatrix();
  SirPredictor sir;
  sir.Fit(m);
  // Items 0 and 1 correlate positively; predicting i0 for u0 uses the
  // user's rating of i1 (and nothing else — i2 is anti-correlated and
  // filtered by min_similarity 0).
  EXPECT_NEAR(sir.Predict(0, 0), 4.0, 1e-6);
}

TEST(Sir, FallsBackToUserMean) {
  // No GIS neighbours at all → user mean.
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5);
  b.Add(1, 1, 1);
  const auto m = b.Build();
  SirPredictor sir;
  sir.Fit(m);
  EXPECT_DOUBLE_EQ(sir.Predict(0, 1), m.UserMean(0));
}

TEST(Sir, NeighborCapRestricts) {
  const auto split = MediumSplit();
  SirConfig capped;
  capped.max_neighbors = 1;
  SirPredictor one(capped);
  SirPredictor all;
  const auto mae_one = eval::Evaluate(one, split).mae;
  const auto mae_all = eval::Evaluate(all, split).mae;
  EXPECT_LT(mae_all, mae_one);  // one neighbour is noisier
}

TEST(Sir, BeatsGlobalMeanOnStructuredData) {
  const auto split = MediumSplit();
  SirPredictor sir;
  EXPECT_LT(eval::Evaluate(sir, split).mae, FloorMae(split));
}

TEST(Sir, TotalOnTiny) {
  const auto m = TinyMatrix();
  SirPredictor sir;
  sir.Fit(m);
  ExpectTotalAndFinite(sir, m);
}

// ----------------------------------------------------------------- SUR ----

TEST(Sur, Eq2RawWeightedAverage) {
  const auto m = TinyMatrix();
  SurPredictor sur;
  sur.Fit(m);
  // u0's only positively-similar user is u1; Eq. 2 (no mean-centring)
  // returns u1's rating of the item directly.
  EXPECT_NEAR(sur.Predict(0, 2), 2.0, 1e-6);
}

TEST(Sur, MeanCenteredVariant) {
  const auto m = TinyMatrix();
  SurConfig config;
  config.mean_center = true;
  SurPredictor sur(config);
  sur.Fit(m);
  // Resnick: r̄_u0 + sim·(r_u1,i2 − r̄_u1)/sim = 10/3 + (2 − 11/3).
  EXPECT_NEAR(sur.Predict(0, 2), 10.0 / 3.0 + (2.0 - 11.0 / 3.0), 1e-6);
}

TEST(Sur, FallsBackToUserMean) {
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5);
  b.Add(1, 1, 1);
  const auto m = b.Build();
  SurPredictor sur;
  sur.Fit(m);
  EXPECT_DOUBLE_EQ(sur.Predict(0, 1), m.UserMean(0));
}

TEST(Sur, BeatsGlobalMean) {
  const auto split = MediumSplit();
  SurPredictor sur;
  EXPECT_LT(eval::Evaluate(sur, split).mae, FloorMae(split));
}

TEST(Sur, MeanCenteringHelpsWithBiasedUsers) {
  const auto split = MediumSplit();
  SurConfig centered;
  centered.mean_center = true;
  SurPredictor c(centered);
  SurPredictor raw;
  // The generator includes user-bias diversity, which mean-centring
  // removes — the reason the paper's own SUR′ is centred.
  EXPECT_LT(eval::Evaluate(c, split).mae, eval::Evaluate(raw, split).mae);
}

// ------------------------------------------------------------------ SF ----

TEST(Sf, RejectsBadWeights) {
  SfConfig config;
  config.lambda = 1.5;
  EXPECT_THROW(SfPredictor{config}, util::ConfigError);
  config = SfConfig{};
  config.delta = -0.1;
  EXPECT_THROW(SfPredictor{config}, util::ConfigError);
}

TEST(Sf, InterpolatesBetweenSources) {
  const auto m = TinyMatrix();
  SfConfig pure_item;
  pure_item.lambda = 0.0;
  pure_item.delta = 0.0;
  SfPredictor item_only(pure_item);
  item_only.Fit(m);
  SirPredictor sir;
  sir.Fit(m);
  EXPECT_NEAR(item_only.Predict(0, 0), sir.Predict(0, 0), 1e-6);

  SfConfig pure_user;
  pure_user.lambda = 1.0;
  pure_user.delta = 0.0;
  SfPredictor user_only(pure_user);
  user_only.Fit(m);
  SurConfig centered;
  centered.mean_center = true;
  SurPredictor sur(centered);
  sur.Fit(m);
  EXPECT_NEAR(user_only.Predict(0, 2), sur.Predict(0, 2), 1e-6);
}

TEST(Sf, BeatsGlobalMean) {
  const auto split = MediumSplit();
  SfPredictor sf;
  EXPECT_LT(eval::Evaluate(sf, split).mae, FloorMae(split));
}

TEST(Sf, TotalOnTiny) {
  const auto m = TinyMatrix();
  SfPredictor sf;
  sf.Fit(m);
  ExpectTotalAndFinite(sf, m);
}

// -------------------------------------------------------------- SCBPCC ----

TEST(Scbpcc, RejectsBadConfig) {
  ScbpccConfig config;
  config.epsilon = 2.0;
  EXPECT_THROW(ScbpccPredictor{config}, util::ConfigError);
  config = ScbpccConfig{};
  config.top_k_users = 0;
  EXPECT_THROW(ScbpccPredictor{config}, util::ConfigError);
}

TEST(Scbpcc, BeatsGlobalMean) {
  const auto split = MediumSplit();
  ScbpccConfig config;
  config.num_clusters = 8;
  ScbpccPredictor scbpcc(config);
  EXPECT_LT(eval::Evaluate(scbpcc, split).mae, FloorMae(split));
}

TEST(Scbpcc, FullScanAtLeastAsAccurateAsPreselect) {
  const auto split = MediumSplit();
  ScbpccConfig pre;
  pre.num_clusters = 8;
  pre.preselect_clusters = 2;
  ScbpccConfig full;
  full.num_clusters = 8;
  full.preselect_clusters = 0;
  ScbpccPredictor a(pre);
  ScbpccPredictor b(full);
  const double mae_pre = eval::Evaluate(a, split).mae;
  const double mae_full = eval::Evaluate(b, split).mae;
  // The full scan considers a superset of candidates; allow a hair of
  // noise but it should not be meaningfully worse.
  EXPECT_LT(mae_full, mae_pre + 0.01);
}

TEST(Scbpcc, ClustersCapAtUserCount) {
  const auto m = TinyMatrix();
  ScbpccConfig config;
  config.num_clusters = 30;  // only 4 users exist
  ScbpccPredictor scbpcc(config);
  scbpcc.Fit(m);
  EXPECT_LE(scbpcc.cluster_model().num_clusters(), 4u);
  ExpectTotalAndFinite(scbpcc, m);
}

// ---------------------------------------------------------------- EMDP ----

TEST(Emdp, RejectsBadConfig) {
  EmdpConfig config;
  config.lambda = -0.2;
  EXPECT_THROW(EmdpPredictor{config}, util::ConfigError);
  config = EmdpConfig{};
  config.eta = 1.2;
  EXPECT_THROW(EmdpPredictor{config}, util::ConfigError);
}

TEST(Emdp, ThresholdsGateNeighbors) {
  const auto split = MediumSplit();
  EmdpConfig open;
  open.eta = 0.0;
  open.theta = 0.0;
  EmdpConfig closed;
  closed.eta = 0.999;
  closed.theta = 0.999;
  EmdpPredictor a(open);
  EmdpPredictor b(closed);
  const double mae_open = eval::Evaluate(a, split).mae;
  const double mae_closed = eval::Evaluate(b, split).mae;
  // With the gates closed EMDP degenerates to the mean blend — worse.
  EXPECT_LT(mae_open, mae_closed);
}

TEST(Emdp, ClosedGatesEqualMeanBlend) {
  const auto m = TinyMatrix();
  EmdpConfig closed;
  closed.eta = 0.9999;
  closed.theta = 0.9999;
  EmdpPredictor emdp(closed);
  emdp.Fit(m);
  const double expected =
      closed.lambda * m.UserMean(0) + (1.0 - closed.lambda) * m.ItemMean(2);
  EXPECT_NEAR(emdp.Predict(0, 2), expected, 1e-9);
}

TEST(Emdp, BeatsGlobalMean) {
  const auto split = MediumSplit();
  EmdpPredictor emdp;
  EXPECT_LT(eval::Evaluate(emdp, split).mae, FloorMae(split));
}

// ------------------------------------------------------------------ PD ----

TEST(Pd, RejectsBadConfig) {
  PdConfig config;
  config.sigma = 0.0;
  EXPECT_THROW(PdPredictor{config}, util::ConfigError);
}

TEST(Pd, AgreesWithIdenticalPersonality) {
  // u0 and u1 agree exactly on two items; u1 rated the target.  PD should
  // essentially return u1's rating.
  matrix::RatingMatrixBuilder b(3, 3);
  b.Add(0, 0, 5); b.Add(0, 1, 1);
  b.Add(1, 0, 5); b.Add(1, 1, 1); b.Add(1, 2, 4);
  b.Add(2, 0, 1); b.Add(2, 1, 5); b.Add(2, 2, 1);
  const auto m = b.Build();
  PdConfig config;
  config.sigma = 0.5;
  PdPredictor pd(config);
  pd.Fit(m);
  EXPECT_NEAR(pd.Predict(0, 2), 4.0, 0.2);
}

TEST(Pd, NoRatersFallsBackToUserMean) {
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5);
  b.Add(1, 0, 3);
  const auto m = b.Build();
  PdPredictor pd;
  pd.Fit(m);
  EXPECT_DOUBLE_EQ(pd.Predict(0, 1), m.UserMean(0));
}

TEST(Pd, SigmaControlsSharpness) {
  const auto split = MediumSplit();
  PdConfig sharp;
  sharp.sigma = 0.3;
  PdConfig diffuse;
  diffuse.sigma = 30.0;  // so wide every personality votes equally
  PdPredictor a(sharp);
  PdPredictor b(diffuse);
  const double mae_sharp = eval::Evaluate(a, split).mae;
  const double mae_diffuse = eval::Evaluate(b, split).mae;
  // Diffuse PD collapses toward the item mean — strictly less personal.
  EXPECT_NE(mae_sharp, mae_diffuse);
}

TEST(Pd, BeatsGlobalMean) {
  const auto split = MediumSplit();
  PdPredictor pd;
  EXPECT_LT(eval::Evaluate(pd, split).mae, FloorMae(split));
}

// ------------------------------------------------------------------ AM ----

TEST(Am, RejectsBadConfig) {
  AspectModelConfig config;
  config.num_aspects = 0;
  EXPECT_THROW(AspectModelPredictor{config}, util::ConfigError);
  config = AspectModelConfig{};
  config.sigma_floor = 0.0;
  EXPECT_THROW(AspectModelPredictor{config}, util::ConfigError);
}

TEST(Am, PredictBeforeFitThrows) {
  AspectModelPredictor am;
  EXPECT_THROW(am.Predict(0, 0), util::ConfigError);
}

TEST(Am, LogLikelihoodImprovesOverTraining) {
  const auto split = MediumSplit();
  AspectModelConfig one_iter;
  one_iter.em_iterations = 1;
  AspectModelConfig many;
  many.em_iterations = 15;
  AspectModelPredictor a(one_iter);
  a.Fit(split.train);
  AspectModelPredictor b(many);
  b.Fit(split.train);
  EXPECT_GT(b.TrainLogLikelihood(), a.TrainLogLikelihood());
}

TEST(Am, DeterministicPerSeed) {
  const auto m = TinyMatrix();
  AspectModelConfig config;
  config.num_aspects = 2;
  config.em_iterations = 5;
  AspectModelPredictor a(config);
  a.Fit(m);
  AspectModelPredictor b(config);
  b.Fit(m);
  EXPECT_DOUBLE_EQ(a.Predict(0, 0), b.Predict(0, 0));
}

TEST(Am, BeatsGlobalMean) {
  const auto split = MediumSplit();
  AspectModelPredictor am;
  EXPECT_LT(eval::Evaluate(am, split).mae, FloorMae(split));
}

TEST(Am, TotalOnTiny) {
  const auto m = TinyMatrix();
  AspectModelConfig config;
  config.num_aspects = 2;
  config.em_iterations = 3;
  AspectModelPredictor am(config);
  am.Fit(m);
  ExpectTotalAndFinite(am, m);
}

// --------------------------------------------------- cross-method facts ----

TEST(AllBaselines, OrderingOnStructuredData) {
  // Not the paper's exact ordering (that is bench territory) but the
  // robust facts: every CF method beats the global mean, and the
  // neighbourhood methods beat the trivial means.
  const auto split = MediumSplit();
  const double floor = FloorMae(split);
  SurPredictor sur;
  SirPredictor sir;
  ScbpccConfig sconfig;
  sconfig.num_clusters = 8;
  ScbpccPredictor scbpcc(sconfig);
  EXPECT_LT(eval::Evaluate(sur, split).mae, floor);
  EXPECT_LT(eval::Evaluate(sir, split).mae, floor);
  EXPECT_LT(eval::Evaluate(scbpcc, split).mae, floor);
}

}  // namespace
}  // namespace cfsf::baselines
