// Unit tests for the checkpoint subsystem: manifest / CURRENT codecs
// and atomic file round trips, WAL compaction bounds, the request-id
// dedup window, the DeltaFolder's fold watermark, CheckpointManager's
// write/skip/GC cycle and ckpt::Recover's ladder.  The crash and
// corruption halves live in tests/ckpt_crash_test.cpp (label `fault`).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recover.hpp"
#include "core/cfsf.hpp"
#include "data/synthetic.hpp"
#include "matrix/types.hpp"
#include "serve/delta_folder.hpp"
#include "serve/model_generation.hpp"
#include "util/error.hpp"
#include "wal/compact.hpp"
#include "wal/format.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kUsers = 30;
constexpr std::uint32_t kItems = 40;

// Deterministic rating content keyed by lsn; cells are unique for
// lsn < kUsers * kItems, so every fold is independently checkable.
matrix::RatingTriple RecordForLsn(std::uint64_t lsn) {
  matrix::RatingTriple record;
  record.user = static_cast<matrix::UserId>(lsn % kUsers);
  record.item = static_cast<matrix::ItemId>((lsn / kUsers) % kItems);
  record.value = static_cast<matrix::Rating>(1.0 + (lsn % 9) * 0.5);
  record.timestamp = static_cast<matrix::Timestamp>(1000000000 + lsn);
  return record;
}

std::unique_ptr<core::CfsfModel> TinySeed() {
  data::SyntheticConfig dconfig;
  dconfig.num_users = kUsers;
  dconfig.num_items = kItems;
  dconfig.min_ratings_per_user = 8;
  dconfig.seed = 77;
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 12;
  config.top_k_users = 6;
  auto model = std::make_unique<core::CfsfModel>(config);
  model->Fit(data::GenerateSynthetic(dconfig));
  return model;
}

// Every lsn in [1, upto] must read back as its RecordForLsn value.
void ExpectFoldedUpTo(const core::CfsfModel& model, std::uint64_t upto) {
  for (std::uint64_t lsn = 1; lsn <= upto; ++lsn) {
    const matrix::RatingTriple want = RecordForLsn(lsn);
    const auto got = model.train().GetRating(want.user, want.item);
    ASSERT_TRUE(got.has_value()) << "lsn " << lsn << " lost";
    EXPECT_FLOAT_EQ(*got, want.value) << "lsn " << lsn << " corrupted";
  }
}

class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::path(::testing::TempDir()) /
             ("cfsf_ckpt_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    wal_dir_ = root_ + "/wal";
    ckpt_dir_ = root_ + "/ckpt";
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
  std::string wal_dir_;
  std::string ckpt_dir_;
};

// --------------------------------------------------------- manifest ----

TEST(CkptManifestTest, ManifestRoundTripsAndRejectsAnyBitFlip) {
  ckpt::Manifest manifest;
  manifest.id = 42;
  manifest.watermark_lsn = 100913;
  manifest.generation = 7;
  manifest.model_bytes = 1234567;
  unsigned char raw[ckpt::kManifestBytes];
  ckpt::EncodeManifest(manifest, raw);
  ckpt::Manifest decoded;
  ASSERT_TRUE(ckpt::DecodeManifest(raw, &decoded));
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.watermark_lsn, 100913u);
  EXPECT_EQ(decoded.generation, 7u);
  EXPECT_EQ(decoded.model_bytes, 1234567u);
  for (std::size_t byte = 0; byte < ckpt::kManifestBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      unsigned char bent[ckpt::kManifestBytes];
      std::copy(raw, raw + ckpt::kManifestBytes, bent);
      bent[byte] = static_cast<unsigned char>(bent[byte] ^ (1u << bit));
      EXPECT_FALSE(ckpt::DecodeManifest(bent, &decoded))
          << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(CkptManifestTest, CurrentRoundTripsAndRejectsAnyBitFlip) {
  unsigned char raw[ckpt::kCurrentBytes];
  ckpt::EncodeCurrent(9000000001ull, raw);
  std::uint64_t id = 0;
  ASSERT_TRUE(ckpt::DecodeCurrent(raw, &id));
  EXPECT_EQ(id, 9000000001ull);
  for (std::size_t byte = 0; byte < ckpt::kCurrentBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      unsigned char bent[ckpt::kCurrentBytes];
      std::copy(raw, raw + ckpt::kCurrentBytes, bent);
      bent[byte] = static_cast<unsigned char>(bent[byte] ^ (1u << bit));
      EXPECT_FALSE(ckpt::DecodeCurrent(bent, &id));
    }
  }
}

TEST(CkptManifestTest, FileNamesRoundTripAndRejectStrays) {
  EXPECT_EQ(ckpt::ModelFileName(42), "ckpt-0000000042.model");
  EXPECT_EQ(ckpt::ManifestFileName(42), "ckpt-0000000042.manifest");
  std::uint64_t id = 0;
  ASSERT_TRUE(ckpt::ParseManifestFileName("ckpt-0000000042.manifest", &id));
  EXPECT_EQ(id, 42u);
  EXPECT_FALSE(ckpt::ParseManifestFileName("ckpt-0000000042.model", &id));
  EXPECT_FALSE(ckpt::ParseManifestFileName("ckpt-abc.manifest", &id));
  EXPECT_FALSE(
      ckpt::ParseManifestFileName("ckpt-0000000042.manifest.tmp", &id));
}

TEST_F(CkptTest, ManifestFilesRoundTripAndListAscending) {
  fs::create_directories(ckpt_dir_);
  for (const std::uint64_t id : {3u, 1u, 2u}) {
    ckpt::Manifest manifest;
    manifest.id = id;
    manifest.watermark_lsn = id * 10;
    ckpt::WriteManifestFile(ckpt_dir_, manifest);
  }
  ckpt::WriteCurrentFile(ckpt_dir_, 3);
  EXPECT_EQ(ckpt::ListCheckpointIds(ckpt_dir_),
            (std::vector<std::uint64_t>{1, 2, 3}));
  ckpt::Manifest manifest;
  ASSERT_TRUE(ckpt::ReadManifestFile(
      (fs::path(ckpt_dir_) / ckpt::ManifestFileName(2)).string(), &manifest));
  EXPECT_EQ(manifest.watermark_lsn, 20u);
  std::uint64_t current = 0;
  ASSERT_TRUE(ckpt::ReadCurrentFile(ckpt_dir_, &current));
  EXPECT_EQ(current, 3u);
  // Absent directory and absent file are "no", not exceptions.
  EXPECT_TRUE(ckpt::ListCheckpointIds(root_ + "/nope").empty());
  EXPECT_FALSE(ckpt::ReadCurrentFile(root_ + "/nope", &current));
}

TEST_F(CkptTest, TruncatedOrOversizedManifestFilesAreRejected) {
  fs::create_directories(ckpt_dir_);
  ckpt::Manifest manifest;
  manifest.id = 1;
  ckpt::WriteManifestFile(ckpt_dir_, manifest);
  const std::string path =
      (fs::path(ckpt_dir_) / ckpt::ManifestFileName(1)).string();
  fs::resize_file(path, ckpt::kManifestBytes - 5);
  EXPECT_FALSE(ckpt::ReadManifestFile(path, &manifest));
  // Trailing garbage is corruption too, not "extra data".
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "x";
  }
  EXPECT_FALSE(ckpt::ReadManifestFile(path, &manifest));
}

// ------------------------------------------------------------ dedup ----

TEST_F(CkptTest, RequestIdDeduplicatesWithinASessionAndAcrossReopen) {
  const std::uint64_t id_a = wal::HashRequestId("req-a");
  {
    wal::WriteAheadLog log(wal_dir_);
    const wal::AppendAck first =
        log.Append(RecordForLsn(1), /*require_durable=*/true, id_a);
    EXPECT_EQ(first.lsn, 1u);
    EXPECT_FALSE(first.deduplicated);
    const wal::AppendAck retry =
        log.Append(RecordForLsn(1), /*require_durable=*/true, id_a);
    EXPECT_TRUE(retry.deduplicated);
    EXPECT_EQ(retry.lsn, 1u);
    EXPECT_TRUE(retry.durable);
    EXPECT_EQ(log.next_lsn(), 2u) << "a dedup hit must not write";
    // The absorbed retry is never re-acked: exactly one fold source.
    std::vector<wal::AckedRecord> drained;
    EXPECT_EQ(log.DrainAcked(&drained), 1u);
    EXPECT_EQ(log.dedup_entries(), 1u);
  }
  // The window is rebuilt from replay: a cross-restart retry still
  // returns the original ack.
  wal::WriteAheadLog reopened(wal_dir_);
  const wal::AppendAck retry =
      reopened.Append(RecordForLsn(1), /*require_durable=*/true, id_a);
  EXPECT_TRUE(retry.deduplicated);
  EXPECT_EQ(retry.lsn, 1u);
  EXPECT_EQ(reopened.next_lsn(), 2u);
}

TEST_F(CkptTest, DedupWindowEvictsOldEntriesAndZeroDisables) {
  wal::WalOptions options;
  options.dedup_window = 4;
  wal::WriteAheadLog log(wal_dir_, options);
  log.Append(RecordForLsn(1), false, 111);
  for (std::uint64_t lsn = 2; lsn <= 6; ++lsn) {
    log.Append(RecordForLsn(lsn), false, 100 + lsn);
  }
  // lsn 1 + window 4 < next lsn 7: evicted, so the "retry" re-appends.
  const wal::AppendAck stale = log.Append(RecordForLsn(1), false, 111);
  EXPECT_FALSE(stale.deduplicated);
  EXPECT_EQ(stale.lsn, 7u);
  EXPECT_LE(log.dedup_entries(), 5u);

  fs::remove_all(wal_dir_);
  wal::WalOptions off;
  off.dedup_window = 0;
  wal::WriteAheadLog no_dedup(wal_dir_, off);
  no_dedup.Append(RecordForLsn(1), false, 42);
  EXPECT_FALSE(no_dedup.Append(RecordForLsn(1), false, 42).deduplicated);
  EXPECT_EQ(no_dedup.dedup_entries(), 0u);
}

TEST_F(CkptTest, RecordsWithoutARequestIdNeverDeduplicate) {
  wal::WriteAheadLog log(wal_dir_);
  EXPECT_FALSE(log.Append(RecordForLsn(1)).deduplicated);
  EXPECT_FALSE(log.Append(RecordForLsn(1)).deduplicated);
  EXPECT_EQ(log.next_lsn(), 3u);
  EXPECT_EQ(log.dedup_entries(), 0u);
}

// ------------------------------------------------------- compaction ----

// Builds a log of `records` records in segments of 3, then closes it.
void BuildSegmentedLog(const std::string& dir, std::uint64_t records) {
  wal::WalOptions options;
  options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
  wal::WriteAheadLog log(dir, options);
  for (std::uint64_t lsn = 1; lsn <= records; ++lsn) {
    log.Append(RecordForLsn(lsn));
  }
  log.Close();
}

TEST_F(CkptTest, CompactionRemovesOnlyWholeSegmentsBelowTheWatermark) {
  BuildSegmentedLog(wal_dir_, 10);  // segments: 1-3, 4-6, 7-9, 10
  // Watermark 5: segment 1 (lsn 1..3) is removable, segment 2 is not —
  // lsn 6 still lives there.
  const wal::CompactResult partial = wal::CompactWal(wal_dir_, 5);
  EXPECT_EQ(partial.removed_segments, 1u);
  EXPECT_EQ(partial.first_retained_lsn, 4u);
  wal::ReplayResult replay = wal::ReplayLog(wal_dir_);
  ASSERT_EQ(replay.records.size(), 7u);
  EXPECT_EQ(replay.records.front().lsn, 4u);
  EXPECT_EQ(replay.first_lsn, 4u);
  EXPECT_EQ(replay.next_lsn, 11u);

  // Idempotent at the same watermark; a higher one keeps shrinking.
  EXPECT_EQ(wal::CompactWal(wal_dir_, 5).removed_segments, 0u);
  EXPECT_EQ(wal::CompactWal(wal_dir_, 9).removed_segments, 2u);
  replay = wal::ReplayLog(wal_dir_);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records.front().lsn, 10u);

  // The tail segment survives any watermark — the log must stay
  // appendable with a continuous lsn sequence.
  EXPECT_EQ(wal::CompactWal(wal_dir_, 1000).removed_segments, 0u);
  wal::WriteAheadLog log(wal_dir_);
  EXPECT_EQ(log.Append(RecordForLsn(11)).lsn, 11u);
}

TEST_F(CkptTest, CompactionAtWatermarkZeroRemovesNothing) {
  BuildSegmentedLog(wal_dir_, 10);
  const wal::CompactResult result = wal::CompactWal(wal_dir_, 0);
  EXPECT_EQ(result.removed_segments, 0u);
  EXPECT_EQ(wal::ReplayLog(wal_dir_).records.size(), 10u);
}

TEST_F(CkptTest, ReplayAfterCompactionReportsSegmentRanges) {
  BuildSegmentedLog(wal_dir_, 10);
  wal::CompactWal(wal_dir_, 3);
  const wal::ReplayResult replay = wal::ReplayLog(wal_dir_);
  ASSERT_EQ(replay.segment_infos.size(), 3u);
  EXPECT_EQ(replay.segment_infos[0].first_lsn, 4u);
  EXPECT_EQ(replay.segment_infos[0].last_lsn, 6u);
  EXPECT_EQ(replay.segment_infos[0].records, 3u);
  EXPECT_EQ(replay.segment_infos.back().first_lsn, 10u);
  EXPECT_EQ(replay.segment_infos.back().version, wal::kFormatVersion);
}

// ---------------------------------------------------- fold watermark ----

TEST_F(CkptTest, FoldWatermarkTracksDrainedRecordsIncludingSkips) {
  wal::WriteAheadLog log(wal_dir_);
  serve::ModelGeneration models;
  serve::DeltaFolder folder(log, models, TinySeed());
  EXPECT_EQ(folder.fold_watermark(), 0u);

  log.Append(RecordForLsn(1), true);
  log.Append(RecordForLsn(2), true);
  folder.FoldOnce();
  EXPECT_EQ(folder.fold_watermark(), 2u);

  // An out-of-matrix record is permanently unfoldable: the watermark
  // advances over it (replaying it after restart would change nothing).
  log.Append(matrix::RatingTriple{kUsers + 50, 0, 3.0F, 0}, true);
  folder.FoldOnce();
  EXPECT_EQ(folder.fold_watermark(), 3u);
  EXPECT_EQ(folder.skipped_records(), 1u);

  const serve::ShadowSnapshot snapshot = folder.SnapshotShadow();
  ASSERT_NE(snapshot.model, nullptr);
  EXPECT_EQ(snapshot.watermark, 3u);
  ExpectFoldedUpTo(*snapshot.model, 2);
}

TEST_F(CkptTest, InitialWatermarkSeedsTheFolder) {
  wal::WriteAheadLog log(wal_dir_);
  serve::ModelGeneration models;
  serve::DeltaFolderOptions options;
  options.initial_watermark = 17;
  serve::DeltaFolder folder(log, models, TinySeed(), options);
  EXPECT_EQ(folder.fold_watermark(), 17u);
}

// ------------------------------------------------ checkpoint manager ----

TEST_F(CkptTest, CheckpointWriteSkipAndGarbageCollectCycle) {
  wal::WalOptions wal_options;
  wal_options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
  wal::WriteAheadLog log(wal_dir_, wal_options);
  serve::ModelGeneration models;
  serve::DeltaFolder folder(log, models, TinySeed());
  ckpt::CheckpointOptions options;
  options.dir = ckpt_dir_;
  options.keep_last = 2;
  ckpt::CheckpointManager manager(folder, log, options);

  // First checkpoint is always written (it seeds the fallback ladder),
  // even at watermark 0.
  EXPECT_EQ(manager.CheckpointNow(), 1u);
  // Nothing folded since: skip, not an identical rewrite.
  EXPECT_EQ(manager.CheckpointNow(), 0u);

  std::uint64_t next = 2;
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      log.Append(RecordForLsn(log.next_lsn()), true);
    }
    folder.FoldOnce();
    EXPECT_EQ(manager.CheckpointNow(), next++);
  }

  const ckpt::CheckpointStatus status = manager.status();
  EXPECT_EQ(status.last_id, 4u);
  EXPECT_EQ(status.last_watermark, 12u);
  EXPECT_EQ(status.writes, 4u);
  EXPECT_EQ(status.failures, 0u);
  EXPECT_FALSE(status.compaction_failed);
  // GC kept exactly keep_last, CURRENT points at the newest, and
  // compaction ran below the *minimum* retained watermark (8): the
  // oldest retained checkpoint can still find its whole replay suffix.
  EXPECT_EQ(ckpt::ListCheckpointIds(ckpt_dir_),
            (std::vector<std::uint64_t>{3, 4}));
  std::uint64_t current = 0;
  ASSERT_TRUE(ckpt::ReadCurrentFile(ckpt_dir_, &current));
  EXPECT_EQ(current, 4u);
  const wal::ReplayResult replay = wal::ReplayLog(wal_dir_);
  EXPECT_GT(replay.first_lsn, 1u);
  EXPECT_LE(replay.first_lsn, 9u) << "compacted past a retained watermark";
  EXPECT_GT(status.compacted_segments, 0u);
}

TEST_F(CkptTest, ManagerAdoptsExistingCheckpointsAcrossRestart) {
  wal::WriteAheadLog log(wal_dir_);
  serve::ModelGeneration models;
  serve::DeltaFolder folder(log, models, TinySeed());
  ckpt::CheckpointOptions options;
  options.dir = ckpt_dir_;
  {
    ckpt::CheckpointManager manager(folder, log, options);
    log.Append(RecordForLsn(1), true);
    folder.FoldOnce();
    EXPECT_EQ(manager.CheckpointNow(), 1u);
  }
  // A fresh manager resumes numbering and does not rewrite an identical
  // checkpoint for the already-covered watermark.
  ckpt::CheckpointManager manager(folder, log, options);
  EXPECT_EQ(manager.status().last_id, 1u);
  EXPECT_EQ(manager.status().last_watermark, 1u);
  EXPECT_EQ(manager.CheckpointNow(), 0u);
  log.Append(RecordForLsn(2), true);
  folder.FoldOnce();
  EXPECT_EQ(manager.CheckpointNow(), 2u);
}

// ----------------------------------------------------------- recover ----

TEST_F(CkptTest, RecoverFromSeedReplaysTheWholeLog) {
  {
    wal::WriteAheadLog log(wal_dir_);
    for (std::uint64_t lsn = 1; lsn <= 20; ++lsn) {
      log.Append(RecordForLsn(lsn), true);
    }
  }
  ckpt::RecoverOptions options;
  options.wal_dir = wal_dir_;  // no ckpt_dir: the pre-checkpoint path
  options.seed_model = TinySeed;
  const ckpt::RecoveryResult result = ckpt::Recover(options);
  EXPECT_EQ(result.info.source, "seed");
  EXPECT_EQ(result.info.watermark, 0u);
  EXPECT_EQ(result.info.replayed_records, 20u);
  EXPECT_EQ(result.info.fallbacks, 0u);
  EXPECT_FALSE(result.info.degraded_history);
  ExpectFoldedUpTo(*result.model, 20);
  EXPECT_EQ(result.log->next_lsn(), 21u);
}

TEST_F(CkptTest, RecoverFromACheckpointReplaysOnlyTheSuffix) {
  {
    wal::WriteAheadLog log(wal_dir_);
    serve::ModelGeneration models;
    serve::DeltaFolder folder(log, models, TinySeed());
    for (std::uint64_t lsn = 1; lsn <= 12; ++lsn) {
      log.Append(RecordForLsn(lsn), true);
    }
    folder.FoldOnce();
    ckpt::CheckpointOptions options;
    options.dir = ckpt_dir_;
    ckpt::CheckpointManager manager(folder, log, options);
    EXPECT_EQ(manager.CheckpointNow(), 1u);
    for (std::uint64_t lsn = 13; lsn <= 17; ++lsn) {
      log.Append(RecordForLsn(lsn), true);
    }
  }
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir_;
  options.wal_dir = wal_dir_;
  bool seed_called = false;
  options.seed_model = [&] {
    seed_called = true;
    return TinySeed();
  };
  const ckpt::RecoveryResult result = ckpt::Recover(options);
  EXPECT_FALSE(seed_called) << "a healthy checkpoint must not re-seed";
  EXPECT_EQ(result.info.source, "checkpoint");
  EXPECT_EQ(result.info.checkpoint_id, 1u);
  EXPECT_EQ(result.info.watermark, 12u);
  EXPECT_EQ(result.info.replayed_records, 5u) << "replay was not bounded";
  ExpectFoldedUpTo(*result.model, 17);
}

TEST_F(CkptTest, RecoverFallsBackToThePreviousCheckpointOnCorruption) {
  {
    wal::WriteAheadLog log(wal_dir_);
    serve::ModelGeneration models;
    serve::DeltaFolder folder(log, models, TinySeed());
    ckpt::CheckpointOptions options;
    options.dir = ckpt_dir_;
    options.compact = false;
    ckpt::CheckpointManager manager(folder, log, options);
    for (std::uint64_t lsn = 1; lsn <= 6; ++lsn) {
      log.Append(RecordForLsn(lsn), true);
    }
    folder.FoldOnce();
    EXPECT_EQ(manager.CheckpointNow(), 1u);
    for (std::uint64_t lsn = 7; lsn <= 9; ++lsn) {
      log.Append(RecordForLsn(lsn), true);
    }
    folder.FoldOnce();
    EXPECT_EQ(manager.CheckpointNow(), 2u);
  }
  // Flip one byte mid-bundle in the newest checkpoint.
  const std::string victim =
      (fs::path(ckpt_dir_) / ckpt::ModelFileName(2)).string();
  {
    std::fstream file(victim, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    file.put(static_cast<char>(byte ^ 0x20));
  }
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir_;
  options.wal_dir = wal_dir_;
  options.seed_model = TinySeed;
  const ckpt::RecoveryResult result = ckpt::Recover(options);
  EXPECT_EQ(result.info.source, "checkpoint");
  EXPECT_EQ(result.info.checkpoint_id, 1u);
  EXPECT_EQ(result.info.fallbacks, 1u);
  EXPECT_EQ(result.info.watermark, 6u);
  EXPECT_EQ(result.info.replayed_records, 3u);
  EXPECT_FALSE(result.info.degraded_history);
  ExpectFoldedUpTo(*result.model, 9);
}

TEST_F(CkptTest, RecoverFlagsDegradedHistoryWhenTheLadderOutrunsTheLog) {
  // A compacted log with no checkpoint to cover the removed prefix: the
  // seed fallback cannot reconstruct lsn 1..6 — that must be loud, not
  // silent.  (Reaching this for real needs every retained checkpoint
  // corrupt at once; the flag is the alarm for exactly that.)
  BuildSegmentedLog(wal_dir_, 10);
  wal::CompactWal(wal_dir_, 6);
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir_;
  options.wal_dir = wal_dir_;
  options.seed_model = TinySeed;
  const ckpt::RecoveryResult result = ckpt::Recover(options);
  EXPECT_EQ(result.info.source, "seed");
  EXPECT_TRUE(result.info.degraded_history);
}

}  // namespace
}  // namespace cfsf
