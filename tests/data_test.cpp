// Unit tests for cfsf::data — u.data parsing, synthetic generator,
// GivenN protocol, catalogue.
#include <gtest/gtest.h>

#include <fstream>
#include <cmath>
#include <set>

#include "data/catalogue.hpp"
#include "data/movielens.hpp"
#include "data/protocol.hpp"
#include "data/synthetic.hpp"
#include "matrix/stats.hpp"
#include "util/error.hpp"

namespace cfsf::data {
namespace {

// ----------------------------------------------------------- movielens ----

TEST(MovieLens, ParsesBasicUData) {
  const std::string content =
      "1\t10\t5\t100\n"
      "1\t20\t3\t200\n"
      "2\t10\t4\t300\n";
  const auto ml = ParseUData(content);
  EXPECT_EQ(ml.matrix.num_users(), 2u);
  EXPECT_EQ(ml.matrix.num_items(), 2u);
  EXPECT_EQ(ml.matrix.num_ratings(), 3u);
  EXPECT_TRUE(ml.matrix.has_timestamps());
}

TEST(MovieLens, RemapsSparseIds) {
  const std::string content = "900\t77\t5\n7\t1000\t2\n";
  const auto ml = ParseUData(content);
  ASSERT_EQ(ml.user_ids.size(), 2u);
  // sort_ids: ascending original ids get dense ids in order.
  EXPECT_EQ(ml.user_ids[0], 7u);
  EXPECT_EQ(ml.user_ids[1], 900u);
  EXPECT_EQ(ml.item_ids[0], 77u);
  EXPECT_EQ(ml.item_ids[1], 1000u);
  EXPECT_FLOAT_EQ(*ml.matrix.GetRating(1, 0), 5.0F);
}

TEST(MovieLens, StreamOrderIds) {
  MovieLensOptions options;
  options.sort_ids = false;
  const auto ml = ParseUData("900\t77\t5\n7\t10\t2\n", options);
  EXPECT_EQ(ml.user_ids[0], 900u);
  EXPECT_EQ(ml.user_ids[1], 7u);
}

TEST(MovieLens, SkipsCommentsAndBlankLines) {
  const auto ml = ParseUData("# header\n\n1\t1\t3\n   \n2\t1\t4\n");
  EXPECT_EQ(ml.matrix.num_ratings(), 2u);
}

TEST(MovieLens, MissingTimestampIsOk) {
  const auto ml = ParseUData("1\t1\t3\n");
  EXPECT_EQ(ml.matrix.num_ratings(), 1u);
  EXPECT_FALSE(ml.matrix.has_timestamps());
}

TEST(MovieLens, DoubleColonDelimiterForThe1MFormat) {
  MovieLensOptions options;
  options.delimiter = "::";
  const auto ml = ParseUData("1::1193::5::978300760\n1::661::3::978302109\n",
                             options);
  EXPECT_EQ(ml.matrix.num_users(), 1u);
  EXPECT_EQ(ml.matrix.num_items(), 2u);
  EXPECT_FLOAT_EQ(*ml.matrix.GetRating(0, 1), 5.0F);  // item 1193 sorts after 661
}

TEST(MovieLens, WhitespaceDelimiter) {
  MovieLensOptions options;
  // std::string(1, ' ') sidesteps a gcc-12 -Wrestrict false positive on
  // assigning a short string literal.
  options.delimiter = std::string(1, ' ');
  const auto ml = ParseUData("1  7   4\n2\t7\t5\n", options);
  EXPECT_EQ(ml.matrix.num_ratings(), 2u);
}

TEST(MovieLens, EmptyDelimiterRejected) {
  MovieLensOptions options;
  options.delimiter = "";
  EXPECT_THROW(ParseUData("1\t1\t1\n", options), util::IoError);
}

TEST(MovieLens, MalformedLinesThrow) {
  EXPECT_THROW(ParseUData("1\t2\n"), util::IoError);
  EXPECT_THROW(ParseUData("a\tb\tc\n"), util::IoError);
}

TEST(MovieLens, MinRatingsFilter) {
  MovieLensOptions options;
  options.min_ratings_per_user = 2;
  const auto ml = ParseUData("1\t1\t3\n1\t2\t4\n2\t1\t5\n", options);
  EXPECT_EQ(ml.matrix.num_users(), 1u);  // user 2 dropped
  EXPECT_EQ(ml.matrix.num_ratings(), 2u);
}

TEST(MovieLens, MaxUsersCap) {
  MovieLensOptions options;
  options.max_users = 1;
  const auto ml = ParseUData("1\t1\t3\n2\t1\t4\n3\t1\t5\n", options);
  EXPECT_EQ(ml.matrix.num_users(), 1u);
}

TEST(MovieLens, LoadMissingFileThrows) {
  EXPECT_THROW(LoadUData("/nonexistent/u.data"), util::IoError);
}

TEST(MovieLens, SaveAndReloadRoundTrip) {
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 3, 10);
  b.Add(1, 1, 5, 20);
  const auto m = b.Build();
  const std::string path = ::testing::TempDir() + "/cfsf_udata_test.tsv";
  SaveUData(m, path);
  const auto reloaded = LoadUData(path);
  EXPECT_EQ(reloaded.matrix.num_ratings(), 2u);
  EXPECT_FLOAT_EQ(*reloaded.matrix.GetRating(0, 0), 3.0F);
  EXPECT_FLOAT_EQ(*reloaded.matrix.GetRating(1, 1), 5.0F);
}

// ----------------------------------------------------------- synthetic ----

TEST(Synthetic, MatchesTableOneScale) {
  SyntheticConfig config;
  const auto m = GenerateSynthetic(config);
  const auto stats = matrix::ComputeStats(m);
  EXPECT_EQ(stats.num_users, 500u);
  EXPECT_EQ(stats.num_items, 1000u);
  // Table I: 94.4 ratings/user, 9.44 % density, 5 rating values in 1..5.
  EXPECT_NEAR(stats.avg_ratings_per_user, 94.4, 12.0);
  EXPECT_NEAR(stats.density, 0.0944, 0.012);
  EXPECT_FLOAT_EQ(stats.min_rating, 1.0F);
  EXPECT_FLOAT_EQ(stats.max_rating, 5.0F);
  EXPECT_EQ(stats.num_distinct_rating_values, 5u);
  EXPECT_GE(stats.min_ratings_per_user, 40u);  // paper's >= 40 filter
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 100;
  const auto a = GenerateSynthetic(config);
  const auto b = GenerateSynthetic(config);
  EXPECT_EQ(a.ToTriples(), b.ToTriples());
}

TEST(Synthetic, SeedChangesData) {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 100;
  const auto a = GenerateSynthetic(config);
  config.seed += 1;
  const auto b = GenerateSynthetic(config);
  EXPECT_NE(a.ToTriples(), b.ToTriples());
}

TEST(Synthetic, IntegerRatingsOnly) {
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 60;
  const auto m = GenerateSynthetic(config);
  for (const auto& t : m.ToTriples()) {
    EXPECT_FLOAT_EQ(t.value, std::round(t.value));
    EXPECT_GE(t.value, 1.0F);
    EXPECT_LE(t.value, 5.0F);
  }
}

TEST(Synthetic, TimestampsMonotonePerUser) {
  SyntheticConfig config;
  config.num_users = 20;
  config.num_items = 100;
  const auto m = GenerateSynthetic(config);
  ASSERT_TRUE(m.has_timestamps());
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto ts = m.UserRowTimestamps(static_cast<matrix::UserId>(u));
    // Rows are item-sorted and stamps were assigned in item order, so they
    // must be strictly increasing within a row.
    for (std::size_t k = 1; k < ts.size(); ++k) EXPECT_GT(ts[k], ts[k - 1]);
  }
}

TEST(Synthetic, NoTimestampsOption) {
  SyntheticConfig config;
  config.num_users = 10;
  config.num_items = 50;
  config.with_timestamps = false;
  EXPECT_FALSE(GenerateSynthetic(config).has_timestamps());
}

TEST(Synthetic, PopularitySkewExists) {
  SyntheticConfig config;
  const auto m = GenerateSynthetic(config);
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < m.num_items(); ++i) {
    counts.push_back(m.ItemRatingCount(static_cast<matrix::ItemId>(i)));
  }
  std::sort(counts.begin(), counts.end());
  // Head (top 10%) must hold several times the tail's (bottom 10%) mass.
  std::size_t tail = 0;
  std::size_t head = 0;
  for (std::size_t k = 0; k < counts.size() / 10; ++k) tail += counts[k];
  for (std::size_t k = counts.size() * 9 / 10; k < counts.size(); ++k) {
    head += counts[k];
  }
  EXPECT_GT(head, 3 * tail);
}

TEST(Synthetic, OracleAgreesWithGenerator) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 80;
  const auto m = GenerateSynthetic(config);
  const SyntheticOracle oracle(config);
  // The observed rating should correlate with the oracle's true score:
  // check that high-true-score observed cells average higher ratings.
  double low_sum = 0.0;
  double high_sum = 0.0;
  std::size_t low_n = 0;
  std::size_t high_n = 0;
  for (const auto& t : m.ToTriples()) {
    const double score = oracle.TrueScore(t.user, t.item);
    if (score < 3.2) {
      low_sum += t.value;
      ++low_n;
    } else if (score > 4.0) {
      high_sum += t.value;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 10u);
  ASSERT_GT(high_n, 10u);
  EXPECT_GT(high_sum / high_n, low_sum / low_n + 0.5);
}

TEST(Synthetic, OracleClusterAndGenreInRange) {
  SyntheticConfig config;
  config.num_users = 20;
  config.num_items = 30;
  const SyntheticOracle oracle(config);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    EXPECT_LT(oracle.UserCluster(static_cast<matrix::UserId>(u)),
              config.num_taste_clusters);
  }
  for (std::size_t i = 0; i < config.num_items; ++i) {
    EXPECT_LT(oracle.ItemGenre(static_cast<matrix::ItemId>(i)),
              config.num_genres);
  }
  EXPECT_THROW(oracle.TrueScore(100, 0), util::ConfigError);
}

TEST(Synthetic, InvalidConfigThrows) {
  SyntheticConfig config;
  config.num_users = 0;
  EXPECT_THROW(GenerateSynthetic(config), util::ConfigError);
  config = SyntheticConfig{};
  config.latent_dim = 0;
  EXPECT_THROW(GenerateSynthetic(config), util::ConfigError);
}

// ------------------------------------------------------------ protocol ----

matrix::RatingMatrix ProtocolBase() {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 120;
  config.min_ratings_per_user = 15;
  config.log_mean = 3.2;
  return GenerateSynthetic(config);
}

TEST(Protocol, ShapeAndGivenCounts) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  const auto split = MakeGivenNSplit(base, config);
  EXPECT_EQ(split.train.num_users(), 50u);
  EXPECT_EQ(split.num_train_users, 30u);
  // Every active user reveals exactly 5 ratings.
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_EQ(split.train.UserRatingCount(static_cast<matrix::UserId>(30 + t)),
              5u);
  }
}

TEST(Protocol, TrainingUsersKeepFullRows) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  const auto split = MakeGivenNSplit(base, config);
  for (std::size_t u = 0; u < 30; ++u) {
    EXPECT_EQ(split.train.UserRatingCount(static_cast<matrix::UserId>(u)),
              base.UserRatingCount(static_cast<matrix::UserId>(u)));
  }
}

TEST(Protocol, TestCasesAreWithheldRatings) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  const auto split = MakeGivenNSplit(base, config);
  EXPECT_FALSE(split.test.empty());
  for (const auto& t : split.test) {
    // Not revealed in train…
    EXPECT_FALSE(split.train.HasRating(t.user, t.item));
    // …and equal to the base matrix's value.
    const auto base_user =
        static_cast<matrix::UserId>(base.num_users() - 20 + (t.user - 30));
    EXPECT_FLOAT_EQ(*base.GetRating(base_user, t.item), t.actual);
  }
}

TEST(Protocol, GivenPlusWithheldEqualsBaseRow) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 40;
  config.num_test_users = 10;
  config.given_n = 7;
  const auto split = MakeGivenNSplit(base, config);
  std::vector<std::size_t> withheld(split.train.num_users(), 0);
  for (const auto& t : split.test) ++withheld[t.user];
  for (std::size_t t = 0; t < 10; ++t) {
    const auto split_user = static_cast<matrix::UserId>(40 + t);
    const auto base_user = static_cast<matrix::UserId>(base.num_users() - 10 + t);
    EXPECT_EQ(split.train.UserRatingCount(split_user) + withheld[split_user],
              base.UserRatingCount(base_user));
  }
}

TEST(Protocol, ActiveUsersListedOnce) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  const auto split = MakeGivenNSplit(base, config);
  std::set<matrix::UserId> unique(split.active_users.begin(),
                                  split.active_users.end());
  EXPECT_EQ(unique.size(), split.active_users.size());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Protocol, TestFractionShrinksTestSet) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  const auto full = MakeGivenNSplit(base, config);
  config.test_fraction = 0.5;
  const auto half = MakeGivenNSplit(base, config);
  EXPECT_EQ(half.active_users.size(), 10u);
  EXPECT_LT(half.test.size(), full.test.size());
  // All users still appear in the matrix with their GivenN rows.
  EXPECT_EQ(half.train.num_users(), full.train.num_users());
}

TEST(Protocol, RandomPolicyIsSeedDeterministic) {
  const auto base = ProtocolBase();
  ProtocolConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.given_n = 5;
  config.policy = GivenPolicy::kRandom;
  config.seed = 99;
  const auto a = MakeGivenNSplit(base, config);
  const auto b = MakeGivenNSplit(base, config);
  EXPECT_EQ(a.train.ToTriples(), b.train.ToTriples());
  config.seed = 100;
  const auto c = MakeGivenNSplit(base, config);
  EXPECT_NE(a.train.ToTriples(), c.train.ToTriples());
}

TEST(Protocol, TimestampPolicyRevealsEarliest) {
  matrix::RatingMatrixBuilder b(2, 4);
  b.Add(0, 0, 3, 50);
  // Active user: timestamps deliberately out of item order.
  b.Add(1, 0, 5, 400);
  b.Add(1, 1, 4, 100);
  b.Add(1, 2, 3, 300);
  b.Add(1, 3, 2, 200);
  const auto base = b.Build();
  ProtocolConfig config;
  config.num_train_users = 1;
  config.num_test_users = 1;
  config.given_n = 2;
  config.policy = GivenPolicy::kFirstByTimestamp;
  const auto split = MakeGivenNSplit(base, config);
  // Earliest two stamps are items 1 (100) and 3 (200).
  EXPECT_TRUE(split.train.HasRating(1, 1));
  EXPECT_TRUE(split.train.HasRating(1, 3));
  EXPECT_FALSE(split.train.HasRating(1, 0));
  EXPECT_FALSE(split.train.HasRating(1, 2));
}

TEST(Protocol, TimestampPolicyRequiresTimestamps) {
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 3);
  b.Add(1, 0, 4);
  const auto base = b.Build();
  ProtocolConfig config;
  config.num_train_users = 1;
  config.num_test_users = 1;
  config.policy = GivenPolicy::kFirstByTimestamp;
  EXPECT_THROW(MakeGivenNSplit(base, config), util::ConfigError);
}

TEST(Protocol, TooFewUsersThrows) {
  const auto base = ProtocolBase();  // 60 users
  ProtocolConfig config;
  config.num_train_users = 50;
  config.num_test_users = 20;
  EXPECT_THROW(MakeGivenNSplit(base, config), util::ConfigError);
}

TEST(Protocol, AllButOneWithholdsExactlyOne) {
  const auto base = ProtocolBase();
  AllButNConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  const auto split = MakeAllButNSplit(base, config);
  EXPECT_EQ(split.test.size(), 20u);  // one withheld rating per active user
  EXPECT_EQ(split.active_users.size(), 20u);
  for (std::size_t t = 0; t < 20; ++t) {
    const auto split_user = static_cast<matrix::UserId>(30 + t);
    const auto base_user = static_cast<matrix::UserId>(base.num_users() - 20 + t);
    EXPECT_EQ(split.train.UserRatingCount(split_user),
              base.UserRatingCount(base_user) - 1);
  }
  for (const auto& t : split.test) {
    EXPECT_FALSE(split.train.HasRating(t.user, t.item));
  }
}

TEST(Protocol, AllButNWithholdsN) {
  const auto base = ProtocolBase();
  AllButNConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.hold_out = 3;
  const auto split = MakeAllButNSplit(base, config);
  EXPECT_EQ(split.test.size(), 60u);
}

TEST(Protocol, AllButNDeterministicPerSeed) {
  const auto base = ProtocolBase();
  AllButNConfig config;
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.seed = 5;
  const auto a = MakeAllButNSplit(base, config);
  const auto b = MakeAllButNSplit(base, config);
  EXPECT_EQ(a.train.ToTriples(), b.train.ToTriples());
  config.seed = 6;
  const auto c = MakeAllButNSplit(base, config);
  EXPECT_NE(a.train.ToTriples(), c.train.ToTriples());
}

TEST(Protocol, AllButNValidates) {
  const auto base = ProtocolBase();  // 60 users
  AllButNConfig config;
  config.num_train_users = 50;
  config.num_test_users = 20;
  EXPECT_THROW(MakeAllButNSplit(base, config), util::ConfigError);
  config = AllButNConfig{};
  config.num_train_users = 30;
  config.num_test_users = 20;
  config.hold_out = 0;
  EXPECT_THROW(MakeAllButNSplit(base, config), util::ConfigError);
}

TEST(Protocol, Labels) {
  EXPECT_EQ(TrainSetLabel(300), "ML_300");
  EXPECT_EQ(GivenLabel(5), "Given5");
}

// ----------------------------------------------------------- catalogue ----

TEST(Catalogue, PaperGrid) {
  EXPECT_EQ(Catalogue::TrainSizes(), (std::vector<std::size_t>{100, 200, 300}));
  EXPECT_EQ(Catalogue::GivenValues(), (std::vector<std::size_t>{5, 10, 20}));
}

TEST(Catalogue, SplitShapes) {
  const Catalogue catalogue(7);
  const auto split = catalogue.Split(100, 5);
  EXPECT_EQ(split.train.num_users(), 300u);
  EXPECT_EQ(split.num_train_users, 100u);
  EXPECT_EQ(split.active_users.size(), 200u);
}

TEST(Catalogue, RejectsUndersizedRealDataset) {
  // A u.data file with too few qualifying users must be refused — the
  // paper's protocol needs 500.
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.min_ratings_per_user = 45;
  config.log_mean = 3.8;
  const auto m = GenerateSynthetic(config);
  const std::string path = ::testing::TempDir() + "/cfsf_small_udata.tsv";
  SaveUData(m, path);
  EXPECT_THROW(Catalogue{path}, util::ConfigError);
}

TEST(Catalogue, SameSplitIsDeterministic) {
  const Catalogue catalogue(7);
  const auto a = catalogue.Split(200, 10);
  const auto b = catalogue.Split(200, 10);
  EXPECT_EQ(a.train.ToTriples(), b.train.ToTriples());
  EXPECT_EQ(a.test.size(), b.test.size());
}

}  // namespace
}  // namespace cfsf::data
