// Unit tests for cfsf::par — thread pool, parallel_for, parallel reduce.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace cfsf::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPool, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("worker failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared: the pool remains usable.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ExceptionRethrowClearsStateForReuse) {
  ThreadPool pool(2);
  // Several failing rounds in a row: each Wait() must rethrow exactly one
  // stored error and reset, never a stale one from an earlier round.
  for (int round = 0; round < 3; ++round) {
    pool.Submit([] { throw util::ConfigError("round failure"); });
    EXPECT_THROW(pool.Wait(), util::ConfigError);
    // Immediately after the rethrow the pool accepts and runs work.
    std::atomic<int> counter{0};
    for (int i = 0; i < 8; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();  // must not throw: the error was consumed above
    EXPECT_EQ(counter.load(), 8);
  }
}

TEST(ThreadPool, ParseNumThreadsAcceptsPlainIntegers) {
  EXPECT_EQ(ParseNumThreads("1"), 1u);
  EXPECT_EQ(ParseNumThreads("8"), 8u);
  EXPECT_EQ(ParseNumThreads("512"), 512u);
}

TEST(ThreadPool, ParseNumThreadsFallsBackToAutoOnGarbage) {
  EXPECT_EQ(ParseNumThreads(nullptr), 0u);
  EXPECT_EQ(ParseNumThreads(""), 0u);
  EXPECT_EQ(ParseNumThreads("four"), 0u);
  EXPECT_EQ(ParseNumThreads("4x"), 0u);
  EXPECT_EQ(ParseNumThreads("3.5"), 0u);
  EXPECT_EQ(ParseNumThreads(" "), 0u);
}

TEST(ThreadPool, ParseNumThreadsTreatsZeroAndNegativeAsAuto) {
  EXPECT_EQ(ParseNumThreads("0"), 0u);
  EXPECT_EQ(ParseNumThreads("-1"), 0u);
  EXPECT_EQ(ParseNumThreads("-999"), 0u);
}

TEST(ThreadPool, ParseNumThreadsClampsHugeValues) {
  EXPECT_EQ(ParseNumThreads("513"), kMaxExplicitThreads);
  EXPECT_EQ(ParseNumThreads("1000000"), kMaxExplicitThreads);
  // Values that overflow int64 parsing count as garbage, not huge.
  EXPECT_EQ(ParseNumThreads("99999999999999999999999999"), 0u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    // No Wait(): the destructor must still let queued tasks finish.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(0, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  bool touched = false;
  ParallelFor(5, 5, [&](std::size_t) { touched = true; });
  ParallelFor(7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, DynamicScheduleVisitsAll) {
  std::vector<std::atomic<int>> visits(777);
  ForOptions options;
  options.schedule = Schedule::kDynamic;
  options.grain = 10;
  ParallelFor(0, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); },
              options);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SingleThreadPoolFallsBackToSerial) {
  // With a one-thread pool parallel_for must not round-trip through the
  // task queue: the body runs inline on the calling thread, so thread_local
  // state and non-atomic writes are safe.
  ThreadPool pool(1);
  ForOptions options;
  options.pool = &pool;
  const auto caller = std::this_thread::get_id();
  std::vector<int> visits(200, 0);  // non-atomic: serial fallback guarantees
  std::atomic<int> off_thread{0};
  ParallelFor(
      0, visits.size(),
      [&](std::size_t i) {
        ++visits[i];
        if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
      },
      options);
  for (const int v : visits) EXPECT_EQ(v, 1);
  EXPECT_EQ(off_thread.load(), 0);

  // Same fallback for the dynamic schedule.
  options.schedule = Schedule::kDynamic;
  std::vector<int> dynamic_visits(200, 0);
  ParallelFor(0, dynamic_visits.size(),
              [&](std::size_t i) { ++dynamic_visits[i]; }, options);
  for (const int v : dynamic_visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, SerialOptionRunsInline) {
  ForOptions options;
  options.serial = true;
  std::vector<int> visits(100, 0);  // not atomic: serial guarantees no races
  ParallelFor(0, visits.size(), [&](std::size_t i) { ++visits[i]; }, options);
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, PrivatePoolIsUsed) {
  ThreadPool pool(2);
  ForOptions options;
  options.pool = &pool;
  std::atomic<int> counter{0};
  ParallelFor(0, 50, [&](std::size_t) { ++counter; }, options);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForRanges, ChunksCoverRangeExactly) {
  std::vector<std::atomic<int>> visits(503);
  ParallelForRanges(0, visits.size(), [&](Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForRanges, ExceptionPropagates) {
  EXPECT_THROW(
      ParallelForRanges(0, 100,
                        [](Range) { throw util::ConfigError("body failed"); }),
      util::ConfigError);
}

TEST(ParallelReduce, SumsMatchSerial) {
  const std::size_t n = 10000;
  const long expected = static_cast<long>(n) * (n - 1) / 2;
  const long sum = ParallelReduce<long>(
      0, n, [] { return 0L; },
      [](long& acc, std::size_t i) { acc += static_cast<long>(i); },
      [](long& total, long& partial) { total += partial; }, 0L);
  EXPECT_EQ(sum, expected);
}

TEST(ParallelReduce, EmptyRangeReturnsInitial) {
  const long sum = ParallelReduce<long>(
      3, 3, [] { return 0L; }, [](long&, std::size_t) {},
      [](long& t, long& p) { t += p; }, 42L);
  EXPECT_EQ(sum, 42L);
}

TEST(ParallelReduce, VectorAccumulators) {
  // Histogram reduction: the pattern GIS building uses.
  const std::size_t n = 1000;
  using Hist = std::vector<int>;
  const Hist hist = ParallelReduce<Hist>(
      0, n, [] { return Hist(10, 0); },
      [](Hist& h, std::size_t i) { ++h[i % 10]; },
      [](Hist& total, Hist& partial) {
        if (total.empty()) {
          total = std::move(partial);
          return;
        }
        for (std::size_t k = 0; k < total.size(); ++k) total[k] += partial[k];
      },
      Hist{});
  ASSERT_EQ(hist.size(), 10u);
  for (const int h : hist) EXPECT_EQ(h, 100);
}

TEST(ParallelReduce, SerialMatchesParallel) {
  const std::size_t n = 5000;
  auto run = [n](bool serial) {
    ForOptions options;
    options.serial = serial;
    return ParallelReduce<double>(
        0, n, [] { return 0.0; },
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + i); },
        [](double& t, double& p) { t += p; }, 0.0, options);
  };
  EXPECT_NEAR(run(true), run(false), 1e-9);
}

TEST(ParallelReduce, GrainLimitsChunkCount) {
  // With grain == n there is exactly one chunk; result identical.
  ForOptions options;
  options.grain = 1000;
  const long sum = ParallelReduce<long>(
      0, 1000, [] { return 0L; },
      [](long& acc, std::size_t i) { acc += static_cast<long>(i); },
      [](long& t, long& p) { t += p; }, 0L, options);
  EXPECT_EQ(sum, 499500L);
}

}  // namespace
}  // namespace cfsf::par
