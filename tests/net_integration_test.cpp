// Loopback integration test for the HTTP serving front end: a real
// HttpServer on an ephemeral 127.0.0.1 port, driven through actual
// sockets by a minimal test client.  Round-trips every route —
// /v1/predict, /v1/predict-batch, /v1/rate, /v1/top-n, /healthz,
// /metrics — and the cross-cutting wire behaviours (keep-alive,
// deadline/trace headers, error statuses, the slow-read timeout,
// graceful drain).  ctest label: integration.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "core/cfsf.hpp"
#include "data/synthetic.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "serve/model_generation.hpp"
#include "serve/serving_stack.hpp"
#include "wal/log.hpp"

namespace cfsf {
namespace {

/// Minimal blocking HTTP/1.1 client for the loopback tests: one
/// connection, Content-Length framing, no keep-alive bookkeeping beyond
/// reusing the socket.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  struct Reply {
    bool ok = false;
    int status = 0;
    std::string headers;  // raw header block, lower-case searchable
    std::string body;
  };

  /// Writes `wire` and reads exactly one response.
  Reply Roundtrip(const std::string& wire) {
    Reply reply;
    if (fd_ < 0) return reply;
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return reply;
      sent += static_cast<std::size_t>(n);
    }

    std::string buffer;
    std::size_t header_end = std::string::npos;
    char chunk[4096];
    while (true) {
      if (header_end == std::string::npos) {
        header_end = buffer.find("\r\n\r\n");
      }
      if (header_end != std::string::npos) {
        const std::size_t body_begin = header_end + 4;
        const std::size_t length = ContentLength(buffer, header_end);
        if (buffer.size() >= body_begin + length) {
          reply.headers = buffer.substr(0, header_end);
          reply.body = buffer.substr(body_begin, length);
          reply.status = std::atoi(buffer.c_str() + 9);  // after "HTTP/1.1 "
          reply.ok = true;
          return reply;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return reply;  // closed or error before a full response
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Convenience builders.
  Reply Get(const std::string& target, const std::string& extra_headers = "") {
    return Roundtrip("GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
                     extra_headers + "\r\n");
  }

  Reply Post(const std::string& target, const std::string& body,
             const std::string& extra_headers = "") {
    return Roundtrip("POST " + target + " HTTP/1.1\r\nHost: t\r\n" +
                     extra_headers +
                     "Content-Length: " + std::to_string(body.size()) +
                     "\r\n\r\n" + body);
  }

 private:
  static std::size_t ContentLength(const std::string& buffer,
                                   std::size_t header_end) {
    // Case-sensitive match is fine: the server emits "Content-Length".
    const std::size_t at = buffer.find("Content-Length: ");
    if (at == std::string::npos || at > header_end) return 0;
    return static_cast<std::size_t>(
        std::atoll(buffer.c_str() + at + std::strlen("Content-Length: ")));
  }

  int fd_ = -1;
};

class NetIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dconfig;
    dconfig.num_users = 60;
    dconfig.num_items = 80;
    dconfig.min_ratings_per_user = 15;
    dconfig.max_ratings_per_user = 30;  // leave unrated items for top-N
    core::CfsfConfig config;
    config.num_clusters = 5;
    config.top_m_items = 15;
    config.top_k_users = 8;
    auto model = std::make_unique<core::CfsfModel>(config);
    model->Fit(data::GenerateSynthetic(dconfig));

    models_ = std::make_unique<serve::ModelGeneration>();
    models_->Install(std::move(model));
    stack_ = std::make_unique<serve::ServingStack>(*models_);
    service_ = std::make_unique<net::ServingService>(*stack_);

    net::ServerOptions options;
    options.num_workers = 4;
    server_ = std::make_unique<net::HttpServer>(*service_, options);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_NE(server_->port(), 0);
  }

  static void TearDownTestSuite() {
    server_.reset();
    service_.reset();
    stack_.reset();
    models_.reset();
  }

  static std::unique_ptr<serve::ModelGeneration> models_;
  static std::unique_ptr<serve::ServingStack> stack_;
  static std::unique_ptr<net::ServingService> service_;
  static std::unique_ptr<net::HttpServer> server_;
};

std::unique_ptr<serve::ModelGeneration> NetIntegrationTest::models_;
std::unique_ptr<serve::ServingStack> NetIntegrationTest::stack_;
std::unique_ptr<net::ServingService> NetIntegrationTest::service_;
std::unique_ptr<net::HttpServer> NetIntegrationTest::server_;

TEST_F(NetIntegrationTest, PredictRouteRoundTrips) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const auto reply = client.Post("/v1/predict", "{\"user\": 0, \"item\": 0}");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(reply.body, &error)) << error;
  EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"predictions\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"rung\":\"full\""), std::string::npos);
}

TEST_F(NetIntegrationTest, PredictBatchRouteRoundTrips) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const auto reply = client.Post("/v1/predict-batch",
                                 "{\"queries\": [[0, 0], [1, 1], [2, 2]]}");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(reply.body, &error)) << error;
  // One prediction object per query.
  std::size_t count = 0;
  for (std::size_t at = reply.body.find("\"value\""); at != std::string::npos;
       at = reply.body.find("\"value\"", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(NetIntegrationTest, TopNRouteRoundTrips) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const auto reply = client.Get("/v1/top-n?user=0&n=5");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(reply.body, &error)) << error;
  EXPECT_NE(reply.body.find("\"ranked\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"score\""), std::string::npos);
}

TEST_F(NetIntegrationTest, HealthzReportsTheActiveGeneration) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const auto reply = client.Get("/healthz");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(reply.body.find("\"breaker_level\":0"), std::string::npos);
}

TEST_F(NetIntegrationTest, MetricsDumpsTheRegistryAsJson) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // A predict first, so the serve/net counters exist in the dump.
  ASSERT_TRUE(client.Post("/v1/predict", "{\"user\": 1, \"item\": 1}").ok);
  const auto reply = client.Get("/metrics");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(reply.body, &error)) << error;
  EXPECT_NE(reply.body.find("net.http.requests"), std::string::npos);
  EXPECT_NE(reply.body.find("serve.requests"), std::string::npos);
}

TEST_F(NetIntegrationTest, KeepAliveServesManyRequestsOnOneConnection) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    const auto reply =
        client.Post("/v1/predict", "{\"user\": 2, \"item\": 3}");
    ASSERT_TRUE(reply.ok) << "request " << i << " on the same connection";
    EXPECT_EQ(reply.status, 200);
    EXPECT_NE(reply.headers.find("Connection: keep-alive"),
              std::string::npos);
  }
}

TEST_F(NetIntegrationTest, DeadlineAndTraceHeadersPropagate) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // An already-expired deadline must still answer 200 from a mean rung
  // (the ladder degrades, it does not block).
  const auto reply = client.Post(
      "/v1/predict", "{\"user\": 0, \"item\": 1}",
      "X-CFSF-Deadline-Us: 0\r\nX-CFSF-Trace-Id: trace-7\r\n");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.headers.find("X-CFSF-Trace-Id: trace-7"),
            std::string::npos);
  EXPECT_NE(reply.body.find("\"trace_id\":\"trace-7\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"deadline_overrun\":true"), std::string::npos);
}

TEST_F(NetIntegrationTest, ErrorStatusesComeFromTheSharedTaxonomy) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Get("/v1/no-such-route").status, 404);
  EXPECT_EQ(client.Post("/v1/predict", "{\"user\": 1}").status, 400);
  EXPECT_EQ(client.Post("/v1/predict", "not json at all").status, 400);
  EXPECT_EQ(client.Get("/v1/top-n?user=abc").status, 400);
  EXPECT_EQ(client.Get("/v1/predict").status, 400);  // wrong method
  // Unknown top-N user: 404 from serve::StatusCode::kNotFound.
  EXPECT_EQ(client.Get("/v1/top-n?user=999999&n=3").status, 404);
  // Malformed HTTP framing closes with a 400 after the error document.
  TestClient garbage(server_->port());
  ASSERT_TRUE(garbage.connected());
  EXPECT_EQ(garbage.Roundtrip("BOGUS\r\n\r\n").status, 400);
}

TEST_F(NetIntegrationTest, RateWithoutALogIs503ServeReadOnly) {
  // The shared stack carries no rating log, so writes degrade to 503
  // with Retry-After while every read route keeps serving.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const TestClient::Reply reply =
      client.Post("/v1/rate", "{\"user\": 1, \"item\": 2, \"rating\": 4}");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 503);
  EXPECT_NE(reply.body.find("\"status\":\"unavailable\""), std::string::npos)
      << reply.body;
  EXPECT_NE(reply.headers.find("Retry-After"), std::string::npos);
}

TEST_F(NetIntegrationTest, RateRouteAcksDurablyWith202) {
  // A dedicated stack with a live rating log behind the shared models.
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "cfsf_net_rate_wal")
          .string();
  std::filesystem::remove_all(dir);
  wal::WriteAheadLog log(dir);
  serve::ServingOptions serving_options;
  serving_options.rating_log = &log;
  serve::ServingStack stack(*models_, serving_options);
  net::ServingService service(stack);
  net::HttpServer server(service);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const TestClient::Reply first = client.Post(
      "/v1/rate", "{\"user\": 3, \"item\": 7, \"rating\": 5}");
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.status, 202);
  EXPECT_NE(first.body.find("\"lsn\":1"), std::string::npos) << first.body;
  const TestClient::Reply second = client.Post(
      "/v1/rate",
      "{\"user\": 4, \"item\": 8, \"rating\": 2, \"timestamp\": 99}");
  EXPECT_EQ(second.status, 202);
  EXPECT_NE(second.body.find("\"lsn\":2"), std::string::npos) << second.body;
  // 202 means durable: both records are already fsynced.
  EXPECT_EQ(log.durable_lsn(), 2u);

  EXPECT_EQ(client.Get("/v1/rate").status, 400);  // wrong method
  EXPECT_EQ(client.Post("/v1/rate",
                        "{\"user\": 1, \"item\": 2, \"rating\": 9}")
                .status,
            400);
  // healthz reports the log as healthy.
  EXPECT_NE(client.Get("/healthz").body.find("\"rating_log\":\"ok\""),
            std::string::npos);

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(NetIntegrationTest, SlowRequestReadTimesOutAndCloses) {
  // A dedicated server with a tight slow-read deadline; the shared one
  // keeps its defaults so the other tests never race this timeout.
  net::ServingService service(*stack_);
  net::ServerOptions options;
  options.num_workers = 2;
  options.poll_interval = std::chrono::milliseconds(5);
  options.read_timeout = std::chrono::milliseconds(100);
  net::HttpServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto& idle_closed =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kNetIdleClosed);
  const std::uint64_t closed_before = idle_closed.Value();

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Half a request, then silence: a slowloris client holding a worker.
  // The server must close the connection once read_timeout elapses —
  // the old last_activity-based idle check alone would wait forever if
  // the client dripped a byte per poll interval.
  const TestClient::Reply reply =
      client.Roundtrip("POST /v1/predict HTTP/1.1\r\nContent-Le");
  EXPECT_FALSE(reply.ok);  // closed without a response
  EXPECT_GE(idle_closed.Value(), closed_before + 1);

  // The server survives to serve well-behaved clients.
  TestClient healthy(server.port());
  ASSERT_TRUE(healthy.connected());
  EXPECT_EQ(healthy.Get("/healthz").status, 200);
  server.Stop();
}

TEST_F(NetIntegrationTest, StopDrainsAndRefusesNewConnections) {
  // A dedicated server so stopping it does not disturb the other tests.
  net::ServingService service(*stack_);
  net::ServerOptions options;
  options.num_workers = 2;
  net::HttpServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const std::uint16_t port = server.port();
  {
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.Get("/healthz").status, 200);
  }
  server.Stop();
  EXPECT_FALSE(server.running());
  // The listening socket is gone: a fresh connect must fail or be
  // closed without a response.
  TestClient late(port);
  if (late.connected()) {
    EXPECT_FALSE(late.Get("/healthz").ok);
  }
}

}  // namespace
}  // namespace cfsf
