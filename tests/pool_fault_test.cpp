// Fault-injection coverage for the thread pool's task-dispatch failpoint
// (threadpool.task) under a saturated queue: injected dispatch faults
// surface at Wait(), the untouched tasks still run, depth accounting
// stays exact, and the pool keeps serving afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>

#include "parallel/thread_pool.hpp"
#include "obs/failpoint.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::InjectedFault;
using obs::ScopedFailPoint;

class PoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

TEST_F(PoolFaultTest, DispatchFaultsUnderSaturatedQueue) {
  par::ThreadPool pool(2);

  // Park both workers on gate tasks so the real workload piles up in the
  // queue — the dispatch faults must fire under genuine saturation, not
  // against an idle pool draining tasks as fast as they arrive.
  std::atomic<bool> gate{false};
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      parked.fetch_add(1, std::memory_order_relaxed);
      while (!gate.load(std::memory_order_acquire)) {
      }
    });
  }
  while (parked.load(std::memory_order_relaxed) < 2) {
  }

  constexpr std::size_t kTasks = 100;
  std::atomic<std::size_t> ran{0};
  {
    // Armed after the gate tasks were dispatched, so exactly the queued
    // workload hits the point: every 5th dispatch (20 of 100) trips and
    // destroys its task unexecuted.
    ScopedFailPoint guard("threadpool.task", "every:5");
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(pool.QueueDepth(), kTasks);
    EXPECT_EQ(pool.InFlight(), kTasks + 2);

    gate.store(true, std::memory_order_release);
    EXPECT_THROW(pool.Wait(), InjectedFault);
    EXPECT_EQ(ran.load(std::memory_order_relaxed), kTasks - kTasks / 5);
    EXPECT_EQ(pool.InFlight(), 0u);
    EXPECT_EQ(
        FailPointRegistry::Global().TripCount("threadpool.task"),
        kTasks / 5);
  }

  // The pool survives a dispatch-fault storm and keeps serving; the
  // error channel was cleared by the throwing Wait().
  pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(std::memory_order_relaxed), kTasks - kTasks / 5 + 1);
}

}  // namespace
}  // namespace cfsf
