// Hand-computed end-to-end verification of the CFSF math (Eqs. 5–14) on a
// fully controlled miniature world.  Every expected value below is derived
// by hand in the comments, so this file anchors the implementation against
// the paper's formulas themselves rather than against other code.
//
// World: 6 users × 4 items, two obvious taste camps.
//
//          i0  i1  i2  i3
//   u0      5   4   1   2     camp A (likes i0/i1)
//   u1      4   5   2   1     camp A
//   u2      5   5   1   -     camp A (did not rate i3)
//   u3      1   2   5   4     camp B (likes i2/i3)
//   u4      2   1   4   5     camp B
//   u5      1   -   5   5     camp B (did not rate i1)
#include <gtest/gtest.h>

#include <cmath>

#include "clustering/kmeans.hpp"
#include "clustering/smoothing.hpp"
#include "core/cfsf.hpp"
#include "similarity/kernels.hpp"
#include "similarity/user_similarity.hpp"

namespace cfsf {
namespace {

matrix::RatingMatrix TwoCampWorld() {
  matrix::RatingMatrixBuilder b(6, 4);
  b.Add(0, 0, 5); b.Add(0, 1, 4); b.Add(0, 2, 1); b.Add(0, 3, 2);
  b.Add(1, 0, 4); b.Add(1, 1, 5); b.Add(1, 2, 2); b.Add(1, 3, 1);
  b.Add(2, 0, 5); b.Add(2, 1, 5); b.Add(2, 2, 1);
  b.Add(3, 0, 1); b.Add(3, 1, 2); b.Add(3, 2, 5); b.Add(3, 3, 4);
  b.Add(4, 0, 2); b.Add(4, 1, 1); b.Add(4, 2, 4); b.Add(4, 3, 5);
  b.Add(5, 0, 1);                 b.Add(5, 2, 5); b.Add(5, 3, 5);
  return b.Build();
}

TEST(CfsfMath, MatrixMeans) {
  const auto m = TwoCampWorld();
  // Item means: i0 = (5+4+5+1+2+1)/6 = 3; i1 = (4+5+5+2+1)/5 = 3.4;
  // i2 = (1+2+1+5+4+5)/6 = 3; i3 = (2+1+4+5+5)/5 = 3.4.
  EXPECT_DOUBLE_EQ(m.ItemMean(0), 3.0);
  EXPECT_DOUBLE_EQ(m.ItemMean(1), 3.4);
  EXPECT_DOUBLE_EQ(m.ItemMean(2), 3.0);
  EXPECT_DOUBLE_EQ(m.ItemMean(3), 3.4);
  // User means: u0 = 12/4 = 3; u2 = 11/3; u5 = 11/3.
  EXPECT_DOUBLE_EQ(m.UserMean(0), 3.0);
  EXPECT_DOUBLE_EQ(m.UserMean(2), 11.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.UserMean(5), 11.0 / 3.0);
}

TEST(CfsfMath, Eq5ItemPearsonByHand) {
  const auto m = TwoCampWorld();
  // sim(i0, i1) over co-raters u0..u4:
  //   dev_i0 = (2, 1, 2, -2, -1), dev_i1 = (0.6, 1.6, 1.6, -1.4, -2.4)
  //   dot = 1.2 + 1.6 + 3.2 + 2.8 + 2.4 = 11.2
  //   |i0| = sqrt(4+1+4+4+1) = sqrt(14)
  //   |i1| = sqrt(0.36+2.56+2.56+1.96+5.76) = sqrt(13.2)
  const auto r01 = sim::PearsonSparse(m.ItemCol(0), m.ItemCol(1),
                                      m.ItemMean(0), m.ItemMean(1));
  EXPECT_EQ(r01.overlap, 5u);
  EXPECT_NEAR(r01.value, 11.2 / (std::sqrt(14.0) * std::sqrt(13.2)), 1e-12);

  // sim(i0, i2) over all 6 users: dev_i2 = (-2, -1, -2, 2, 1, 2)
  //   dot = (2)(-2)+(1)(-1)+(2)(-2)+(-2)(2)+(-1)(1)+(-2)(2) = -18
  //   |i0| = sqrt(18), |i2| = sqrt(18)  →  sim = -1.
  const auto r02 = sim::PearsonSparse(m.ItemCol(0), m.ItemCol(2),
                                      m.ItemMean(0), m.ItemMean(2));
  EXPECT_EQ(r02.overlap, 6u);
  EXPECT_NEAR(r02.value, -1.0, 1e-12);
}

TEST(CfsfMath, GisKeepsOnlyPositivePairs) {
  const auto m = TwoCampWorld();
  sim::GisConfig config;  // min_similarity 0, min_overlap 2, no weighting
  const auto gis = sim::GlobalItemSimilarity::Build(m, config);
  // Positive pairs are (i0,i1) and (i2,i3); all cross-camp pairs are
  // negative and filtered.
  ASSERT_EQ(gis.Neighbors(0).size(), 1u);
  EXPECT_EQ(gis.Neighbors(0)[0].index, 1u);
  ASSERT_EQ(gis.Neighbors(2).size(), 1u);
  EXPECT_EQ(gis.Neighbors(2)[0].index, 3u);
  EXPECT_DOUBLE_EQ(gis.Similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(gis.Similarity(1, 3), 0.0);
}

TEST(CfsfMath, Eq6UserPearsonByHand) {
  const auto m = TwoCampWorld();
  // sim(u0, u1) over i0..i3: dev_u0 = (2,1,-2,-1), dev_u1 = (1,2,-1,-2)
  //   dot = 2+2+2+2 = 8; norms sqrt(10)·sqrt(10) = 10 → 0.8.
  EXPECT_NEAR(sim::UserPcc(m, 0, 1), 0.8, 1e-12);
  // sim(u0, u3) = anti: dev_u3 = (-2,-1,2,1) → dot = -4-1-4-1 = -10 → -1.
  EXPECT_NEAR(sim::UserPcc(m, 0, 3), -1.0, 1e-12);
}

std::vector<std::uint32_t> CampAssignments() { return {0, 0, 0, 1, 1, 1}; }

TEST(CfsfMath, Eq8ClusterDeviationsByHand) {
  const auto m = TwoCampWorld();
  const auto model = cluster::ClusterModel::Build(m, CampAssignments(), 2);
  // Camp A (u0 mean 3, u1 mean 3, u2 mean 11/3):
  //   Δ(A, i0) = ((5-3)+(4-3)+(5-11/3))/3 = (2+1+4/3)/3 = 13/9.
  EXPECT_NEAR(model.ClusterDeviation(0, 0), 13.0 / 9.0, 1e-12);
  //   Δ(A, i3) = ((2-3)+(1-3))/2 = -1.5 (u2 did not rate i3).
  EXPECT_NEAR(model.ClusterDeviation(0, 3), -1.5, 1e-12);
  // Camp B (u3 mean 3, u4 mean 3, u5 mean 11/3):
  //   Δ(B, i2) = ((5-3)+(4-3)+(5-11/3))/3 = 13/9.
  EXPECT_NEAR(model.ClusterDeviation(1, 2), 13.0 / 9.0, 1e-12);
}

TEST(CfsfMath, Eq7SmoothedCellByHand) {
  const auto m = TwoCampWorld();
  const auto model = cluster::ClusterModel::Build(m, CampAssignments(), 2);
  // u2 did not rate i3: smoothed = r̄_u2 + Δ(A, i3) = 11/3 - 1.5 = 13/6.
  EXPECT_NEAR(model.SmoothedProfile(2)[3], 11.0 / 3.0 - 1.5, 1e-12);
  // u5 did not rate i1: Δ(B, i1) = ((2-3)+(1-3))/2 = -1.5 →
  // smoothed = 11/3 - 1.5 = 13/6.
  EXPECT_NEAR(model.SmoothedProfile(5)[1], 11.0 / 3.0 - 1.5, 1e-12);
  // Original cells pass through untouched.
  EXPECT_DOUBLE_EQ(model.SmoothedProfile(2)[0], 5.0);
}

TEST(CfsfMath, Eq9AffinityPrefersOwnCamp) {
  const auto m = TwoCampWorld();
  const auto model = cluster::ClusterModel::Build(m, CampAssignments(), 2);
  for (matrix::UserId u = 0; u < 6; ++u) {
    const auto ic = model.IClusterOf(u);
    EXPECT_EQ(ic[0].cluster, u < 3 ? 0u : 1u) << "user " << u;
    EXPECT_GT(ic[0].similarity, 0.0F);
    EXPECT_LT(ic[1].similarity, 0.0F);  // the other camp anti-correlates
  }
}

TEST(CfsfMath, Eq13CrossWeightByHand) {
  // sim_items = 0.6, sim_users = 0.8 → 0.48 / sqrt(0.36+0.64) = 0.48.
  EXPECT_NEAR(sim::CrossWeight(0.6, 0.8), 0.48, 1e-12);
}

TEST(CfsfMath, Eq14FusionWeightsByHand) {
  // λ = 0.8, δ = 0.1 → weights: SIR' 0.18, SUR' 0.72, SUIR' 0.10.
  const auto m = TwoCampWorld();
  core::CfsfConfig config;
  config.num_clusters = 2;
  config.top_m_items = 4;
  config.top_k_users = 2;
  config.kmeans_max_iterations = 10;
  core::CfsfModel model(config);
  model.Fit(m);
  // Find a query with all three components present and check the blend.
  bool checked = false;
  for (matrix::UserId u = 0; u < 6 && !checked; ++u) {
    for (matrix::ItemId i = 0; i < 4; ++i) {
      const auto parts = model.PredictDetailed(u, i);
      if (parts.sir && parts.sur && parts.suir) {
        const double expected =
            0.18 * *parts.sir + 0.72 * *parts.sur + 0.10 * *parts.suir;
        EXPECT_NEAR(parts.fused, expected, 1e-12);
        checked = true;
        break;
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST(CfsfMath, EndToEndPredictionIsCampConsistent) {
  // The model must predict high for in-camp favourites and low for
  // cross-camp items, for every user, on this noiseless world.
  const auto m = TwoCampWorld();
  core::CfsfConfig config;
  config.num_clusters = 2;
  config.top_m_items = 4;
  config.top_k_users = 3;
  core::CfsfModel model(config);
  model.Fit(m);
  // u2 never rated i3 (their camp dislikes it): prediction must be low.
  EXPECT_LT(model.Predict(2, 3), 3.0);
  // u5 never rated i1 (their camp dislikes it): prediction must be low.
  EXPECT_LT(model.Predict(5, 1), 3.0);
  // And the camps' favourites stay high.
  EXPECT_GT(model.Predict(2, 0), 3.5);
  EXPECT_GT(model.Predict(5, 2), 3.5);
}

TEST(CfsfMath, Eq10SelectionByHand) {
  // With camp-pure clusters and ε = 0 (original ratings only, weight 1),
  // Eq. 10 for u0 against u1 reduces to plain PCC over u0's items where
  // u1's cells are original — all four — i.e. exactly UserPcc(u0,u1)=0.8.
  const auto m = TwoCampWorld();
  const auto model = cluster::ClusterModel::Build(m, CampAssignments(), 2);
  const double s = sim::SmoothingAwarePcc(
      m.UserRow(0), m.UserMean(0), model.SmoothedProfile(1),
      model.OriginalMask(1), model.UserMean(1), /*w=*/0.0);
  EXPECT_NEAR(s, 0.8, 1e-12);
}

TEST(CfsfMath, SirPrimeByHand) {
  // Direct check of the (item-anchored, original-only) SIR' estimate for
  // u2 on i3.  GIS neighbours of i3 = {i2} (positive pair), with
  //   sim(i2, i3) over co-raters u0,u1,u3,u4,u5:
  //   dev_i2 = (-2,-1,2,1,2), dev_i3 = (-1.4,-2.4,0.6,1.6,1.6)
  //   dot = 2.8+2.4+1.2+1.6+3.2 = 11.2; |i2|=sqrt(14); |i3|=sqrt(13.2).
  // u2 rated i2 with 1 (original):
  //   SIR' = ī_3 + (1 − ī_2) = 3.4 + (1 − 3) = 1.4   (weights cancel).
  const auto m = TwoCampWorld();
  core::CfsfConfig config;
  config.num_clusters = 2;
  config.top_m_items = 4;
  config.top_k_users = 2;
  core::CfsfModel model(config);
  model.Fit(m);
  const auto parts = model.PredictDetailed(2, 3);
  ASSERT_TRUE(parts.sir.has_value());
  EXPECT_NEAR(*parts.sir, 1.4, 1e-6);
}

}  // namespace
}  // namespace cfsf
