// Property-based tests (parameterised gtest sweeps) on the library's
// invariants: similarity bounds and symmetries, clustering partitions,
// protocol accounting, fusion convexity, and incremental-update
// consistency — each checked across a grid of seeds/parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "clustering/kmeans.hpp"
#include "clustering/smoothing.hpp"
#include "core/cfsf.hpp"
#include "data/movielens.hpp"
#include "data/protocol.hpp"
#include "data/synthetic.hpp"
#include "similarity/item_similarity.hpp"
#include "similarity/kernels.hpp"
#include "similarity/user_similarity.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace cfsf {
namespace {

matrix::RatingMatrix World(std::uint64_t seed, std::size_t users = 50,
                           std::size_t items = 60) {
  data::SyntheticConfig config;
  config.num_users = users;
  config.num_items = items;
  config.min_ratings_per_user = 10;
  config.log_mean = 3.0;
  config.seed = seed;
  return data::GenerateSynthetic(config);
}

// ------------------------------------------------- similarity invariants ----

class SimilarityProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimilarityProperties, PearsonBoundedAndSymmetric) {
  const auto m = World(GetParam());
  for (matrix::UserId a = 0; a < 12; ++a) {
    for (matrix::UserId b = static_cast<matrix::UserId>(a + 1); b < 12; ++b) {
      const auto ab = sim::PearsonSparse(m.UserRow(a), m.UserRow(b),
                                         m.UserMean(a), m.UserMean(b));
      const auto ba = sim::PearsonSparse(m.UserRow(b), m.UserRow(a),
                                         m.UserMean(b), m.UserMean(a));
      EXPECT_NEAR(ab.value, ba.value, 1e-12);
      EXPECT_EQ(ab.overlap, ba.overlap);
      EXPECT_GE(ab.value, -1.0 - 1e-9);
      EXPECT_LE(ab.value, 1.0 + 1e-9);
    }
  }
}

TEST_P(SimilarityProperties, SelfSimilarityIsOne) {
  const auto m = World(GetParam());
  for (matrix::UserId u = 0; u < 10; ++u) {
    if (m.UserRow(u).size() < 2) continue;
    const auto r = sim::PearsonSparse(m.UserRow(u), m.UserRow(u),
                                      m.UserMean(u), m.UserMean(u));
    if (r.value != 0.0) {  // zero variance rows legitimately give 0
      EXPECT_NEAR(r.value, 1.0, 1e-9);
    }
  }
}

TEST_P(SimilarityProperties, CosineBounded) {
  const auto m = World(GetParam());
  for (matrix::ItemId a = 0; a < 10; ++a) {
    for (matrix::ItemId b = 0; b < 10; ++b) {
      const auto r = sim::CosineSparse(m.ItemCol(a), m.ItemCol(b));
      EXPECT_GE(r.value, -1.0 - 1e-9);
      EXPECT_LE(r.value, 1.0 + 1e-9);
    }
  }
}

TEST_P(SimilarityProperties, GisEntriesMatchDirectKernel) {
  const auto m = World(GetParam());
  const auto gis = sim::GlobalItemSimilarity::Build(m);
  for (matrix::ItemId i = 0; i < 10; ++i) {
    for (const auto& n : gis.Neighbors(i)) {
      const auto direct = sim::PearsonSparse(
          m.ItemCol(i), m.ItemCol(n.index), m.ItemMean(i), m.ItemMean(n.index));
      EXPECT_NEAR(n.similarity, direct.value, 1e-5);
      EXPECT_GE(direct.overlap, gis.config().min_overlap);
    }
  }
}

TEST_P(SimilarityProperties, SmoothingAwarePccBounded) {
  const auto m = World(GetParam());
  cluster::KMeansConfig kconfig;
  kconfig.num_clusters = 5;
  const auto kmeans = cluster::RunKMeans(m, kconfig);
  const auto model = cluster::ClusterModel::Build(m, kmeans.assignments, 5);
  for (matrix::UserId a = 0; a < 8; ++a) {
    for (matrix::UserId b = 0; b < 8; ++b) {
      if (a == b) continue;
      for (const double eps : {0.0, 0.35, 1.0}) {
        const double s = sim::SmoothingAwarePcc(
            m.UserRow(a), m.UserMean(a), model.SmoothedProfile(b),
            model.OriginalMask(b), model.UserMean(b), eps);
        EXPECT_GE(s, -1.0 - 1e-9);
        EXPECT_LE(s, 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperties,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ------------------------------------------------- clustering invariants ----

class ClusteringProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(ClusteringProperties, PartitionIsValid) {
  const auto [clusters, seed] = GetParam();
  const auto m = World(seed);
  cluster::KMeansConfig config;
  config.num_clusters = clusters;
  config.seed = seed;
  const auto result = cluster::RunKMeans(m, config);
  ASSERT_EQ(result.assignments.size(), m.num_users());
  std::size_t total = 0;
  for (const auto s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, m.num_users());
  for (const auto a : result.assignments) EXPECT_LT(a, clusters);
}

TEST_P(ClusteringProperties, SmoothedMatrixPreservesOriginals) {
  const auto [clusters, seed] = GetParam();
  const auto m = World(seed);
  cluster::KMeansConfig config;
  config.num_clusters = clusters;
  config.seed = seed;
  const auto kmeans = cluster::RunKMeans(m, config);
  const auto model = cluster::ClusterModel::Build(m, kmeans.assignments, clusters);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto profile = model.SmoothedProfile(static_cast<matrix::UserId>(u));
    for (const auto& e : m.UserRow(static_cast<matrix::UserId>(u))) {
      EXPECT_DOUBLE_EQ(profile[e.index], e.value);
    }
  }
}

TEST_P(ClusteringProperties, IClusterIsAPermutationOfClusters) {
  const auto [clusters, seed] = GetParam();
  const auto m = World(seed);
  cluster::KMeansConfig config;
  config.num_clusters = clusters;
  config.seed = seed;
  const auto kmeans = cluster::RunKMeans(m, config);
  const auto model = cluster::ClusterModel::Build(m, kmeans.assignments, clusters);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto ic = model.IClusterOf(static_cast<matrix::UserId>(u));
    ASSERT_EQ(ic.size(), clusters);
    std::set<std::uint32_t> seen;
    for (const auto& a : ic) seen.insert(a.cluster);
    EXPECT_EQ(seen.size(), clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClusteringProperties,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 10),
                       ::testing::Values<std::uint64_t>(3, 17)));

// --------------------------------------------------- protocol invariants ----

class ProtocolProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ProtocolProperties, RatingConservation) {
  const auto [given, fraction] = GetParam();
  const auto base = World(11, 60, 80);
  data::ProtocolConfig config;
  config.num_train_users = 35;
  config.num_test_users = 25;
  config.given_n = given;
  config.test_fraction = fraction;
  const auto split = data::MakeGivenNSplit(base, config);

  // No test rating appears in train; every test rating is real.
  for (const auto& t : split.test) {
    EXPECT_FALSE(split.train.HasRating(t.user, t.item));
  }
  // Revealed counts never exceed given_n.
  for (std::size_t k = 0; k < 25; ++k) {
    EXPECT_LE(split.train.UserRatingCount(static_cast<matrix::UserId>(35 + k)),
              given);
  }
  // Active users are a subset of the fraction's participant count (users
  // whose whole row fits inside given_n contribute no test cases and are
  // not listed), and each active user owns at least one test case.
  const auto participants = static_cast<std::size_t>(25 * fraction + 0.5);
  EXPECT_LE(split.active_users.size(), participants);
  std::set<matrix::UserId> with_tests;
  for (const auto& t : split.test) with_tests.insert(t.user);
  EXPECT_EQ(with_tests.size(), split.active_users.size());
  for (const auto u : split.active_users) EXPECT_TRUE(with_tests.contains(u));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolProperties,
    ::testing::Combine(::testing::Values<std::size_t>(5, 10, 20),
                       ::testing::Values(0.2, 0.5, 1.0)));

// ------------------------------------------------------ fusion convexity ----

class FusionProperties
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FusionProperties, FusedValueInsideComponentHull) {
  const auto [lambda, delta] = GetParam();
  const auto m = World(5, 60, 80);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 40;
  pconfig.num_test_users = 20;
  pconfig.given_n = 10;
  const auto split = data::MakeGivenNSplit(m, pconfig);

  core::CfsfConfig config;
  config.num_clusters = 6;
  config.top_m_items = 20;
  config.top_k_users = 8;
  config.lambda = lambda;
  config.delta = delta;
  core::CfsfModel model(config);
  model.Fit(split.train);

  // The hull only spans components that carry positive Eq. 14 weight:
  // a zero-weight component never influences the fused value.
  const double w_sir = (1.0 - delta) * (1.0 - lambda);
  const double w_sur = (1.0 - delta) * lambda;
  const double w_suir = delta;
  for (std::size_t k = 0; k < 40 && k < split.test.size(); ++k) {
    const auto parts =
        model.PredictDetailed(split.test[k].user, split.test[k].item);
    double lo = 1e300;
    double hi = -1e300;
    auto consider = [&](const std::optional<double>& c, double w) {
      if (c && w > 0.0) {
        lo = std::min(lo, *c);
        hi = std::max(hi, *c);
      }
    };
    consider(parts.sir, w_sir);
    consider(parts.sur, w_sur);
    consider(parts.suir, w_suir);
    if (lo > hi) continue;  // no weighted components → mean fallback
    EXPECT_GE(parts.fused, lo - 1e-9);
    EXPECT_LE(parts.fused, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusionProperties,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.8, 1.0),
                       ::testing::Values(0.0, 0.1, 0.5, 1.0)));

// ----------------------------------------- incremental update invariants ----

class IncrementalProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProperties, RefreshAgreesWithRebuildAfterRandomEdits) {
  const auto seed = GetParam();
  const auto m = World(seed, 40, 50);
  auto gis = sim::GlobalItemSimilarity::Build(m);
  util::Rng rng(seed * 31 + 1);

  auto current = m;
  for (int edit = 0; edit < 3; ++edit) {
    const auto user =
        static_cast<matrix::UserId>(rng.NextBounded(current.num_users()));
    const auto item =
        static_cast<matrix::ItemId>(rng.NextBounded(current.num_items()));
    const auto value = static_cast<matrix::Rating>(1 + rng.NextBounded(5));
    current = current.WithRating(user, item, value);
    const matrix::ItemId touched[] = {item};
    gis.RefreshItems(current, touched);
  }
  const auto rebuilt = sim::GlobalItemSimilarity::Build(current);
  ASSERT_EQ(gis.num_items(), rebuilt.num_items());
  for (std::size_t i = 0; i < gis.num_items(); ++i) {
    const auto a = gis.Neighbors(static_cast<matrix::ItemId>(i));
    const auto b = rebuilt.Neighbors(static_cast<matrix::ItemId>(i));
    ASSERT_EQ(a.size(), b.size()) << "item " << i << " seed " << seed;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].index, b[k].index);
      EXPECT_NEAR(a[k].similarity, b[k].similarity, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperties,
                         ::testing::Values(2u, 13u, 77u, 1001u));

// ------------------------------------------------------- CFSF end-to-end ----

class CfsfProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CfsfProperties, PredictionsFiniteAndDeterministic) {
  const auto seed = GetParam();
  const auto m = World(seed, 60, 80);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 40;
  pconfig.num_test_users = 20;
  pconfig.given_n = 8;
  const auto split = data::MakeGivenNSplit(m, pconfig);

  core::CfsfConfig config;
  config.num_clusters = 6;
  config.top_m_items = 25;
  config.top_k_users = 8;
  core::CfsfModel a(config);
  a.Fit(split.train);
  core::CfsfModel b(config);
  b.Fit(split.train);
  for (const auto& t : split.test) {
    const double va = a.Predict(t.user, t.item);
    EXPECT_TRUE(std::isfinite(va));
    EXPECT_DOUBLE_EQ(va, b.Predict(t.user, t.item));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfsfProperties,
                         ::testing::Values(4u, 21u, 333u));

// --------------------------------------------------- parser robustness ----

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GarbageNeverCrashesOnlyThrows) {
  // Random byte soup (printable-biased) must either parse or throw
  // IoError — never crash, never return a malformed matrix.
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string content;
    const std::size_t len = rng.NextBounded(200);
    for (std::size_t i = 0; i < len; ++i) {
      const char pool[] = "0123456789\t\n .:-abcXYZ#";
      content += pool[rng.NextBounded(sizeof(pool) - 1)];
    }
    try {
      const auto ml = data::ParseUData(content);
      // If it parsed, the matrix must be internally consistent.
      EXPECT_EQ(ml.user_ids.size(), ml.matrix.num_users());
      EXPECT_EQ(ml.item_ids.size(), ml.matrix.num_items());
      for (std::size_t u = 0; u < ml.matrix.num_users(); ++u) {
        for (const auto& e : ml.matrix.UserRow(static_cast<matrix::UserId>(u))) {
          EXPECT_LT(e.index, ml.matrix.num_items());
        }
      }
    } catch (const util::IoError&) {
      // Expected for malformed input.
    }
  }
}

TEST_P(ParserFuzz, StructuredLinesWithRandomValuesRoundTrip) {
  // Well-formed lines with arbitrary ids/ratings must always load and
  // reproduce every value.
  util::Rng rng(GetParam() * 7 + 1);
  std::string content;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> expected;
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t user = rng.NextBounded(1000);
    const std::uint64_t item = rng.NextBounded(1000);
    const double rating = 1.0 + static_cast<double>(rng.NextBounded(9)) * 0.5;
    expected[{user, item}] = rating;  // duplicates: last occurrence wins
    content += std::to_string(user) + "\t" + std::to_string(item) + "\t" +
               util::FormatFixed(rating, 1) + "\n";
  }
  const auto ml = data::ParseUData(content);
  EXPECT_EQ(ml.matrix.num_ratings(), expected.size());
  for (std::size_t u = 0; u < ml.matrix.num_users(); ++u) {
    for (const auto& e : ml.matrix.UserRow(static_cast<matrix::UserId>(u))) {
      const auto key = std::make_pair(ml.user_ids[u], ml.item_ids[e.index]);
      ASSERT_TRUE(expected.contains(key));
      EXPECT_NEAR(e.value, expected[key], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace cfsf
