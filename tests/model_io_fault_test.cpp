// Fault-tier tests (ctest label `fault`): checksummed v2 bundle
// corruption handling, v1 back-compat, atomic saves and retry loading
// under injected faults, and the armed end-to-end Evaluate acceptance
// run (CI drives this tier with CFSF_FAILPOINTS set, under ASan).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "eval/evaluate.hpp"
#include "obs/metrics.hpp"
#include "obs/failpoint.hpp"
#include "robust/fallback.hpp"
#include "util/error.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::InjectedFault;
using obs::ScopedFailPoint;

class ModelIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  // One small fitted model shared by the whole suite.
  static core::CfsfModel& Model() {
    static core::CfsfModel* model = [] {
      data::SyntheticConfig dconfig;
      dconfig.num_users = 70;
      dconfig.num_items = 90;
      dconfig.min_ratings_per_user = 15;
      core::CfsfConfig config;
      config.num_clusters = 6;
      config.top_m_items = 20;
      config.top_k_users = 8;
      auto* m = new core::CfsfModel(config);  // cfsf-lint: allow(naked-new)
      m->Fit(data::GenerateSynthetic(dconfig));
      return m;
    }();
    return *model;
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST_F(ModelIoFaultTest, V2RoundTripPredictsIdentically) {
  const std::string path = ::testing::TempDir() + "/cfsf_v2_roundtrip.bin";
  core::SaveModel(Model(), path);
  const auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded->fitted());
  for (matrix::UserId u = 0; u < 20; ++u) {
    EXPECT_DOUBLE_EQ(Model().Predict(u, u % 13), loaded->Predict(u, u % 13));
  }
}

TEST_F(ModelIoFaultTest, VerifyReportsAllFourSections) {
  const std::string path = ::testing::TempDir() + "/cfsf_v2_verify.bin";
  core::SaveModel(Model(), path);
  const auto report = core::VerifyModel(path);
  EXPECT_EQ(report.version, core::kModelFormatVersion);
  ASSERT_EQ(report.sections.size(), 4u);
  EXPECT_EQ(report.sections[0].name, "config");
  EXPECT_EQ(report.sections[1].name, "matrix");
  EXPECT_EQ(report.sections[2].name, "gis");
  EXPECT_EQ(report.sections[3].name, "assignments");
  for (const auto& section : report.sections) {
    EXPECT_GT(section.payload_bytes, 0u) << section.name;
  }
  EXPECT_EQ(report.file_bytes,
            std::filesystem::file_size(std::filesystem::path(path)));
}

TEST_F(ModelIoFaultTest, LegacyV1BundleStillLoads) {
  const std::string path = ::testing::TempDir() + "/cfsf_v1_compat.bin";
  core::SaveModelLegacyV1(Model(), path);
  const auto report = core::VerifyModel(path);
  EXPECT_EQ(report.version, core::kLegacyModelFormatVersion);
  EXPECT_TRUE(report.sections.empty());
  const auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded->fitted());
  for (matrix::UserId u = 0; u < 20; ++u) {
    EXPECT_DOUBLE_EQ(Model().Predict(u, u % 13), loaded->Predict(u, u % 13));
  }
}

TEST_F(ModelIoFaultTest, ZeroLengthFileRejected) {
  const std::string path = ::testing::TempDir() + "/cfsf_zero.bin";
  WriteFileBytes(path, "");
  EXPECT_THROW(core::LoadModel(path), util::IoError);
  EXPECT_THROW(core::VerifyModel(path), util::IoError);
}

TEST_F(ModelIoFaultTest, TruncationNamesTheSection) {
  const std::string path = ::testing::TempDir() + "/cfsf_trunc_v2.bin";
  core::SaveModel(Model(), path);
  const std::string data = ReadFileBytes(path);
  // Cut in the middle of the matrix section (the second and largest).
  const std::string cut = data.substr(0, data.size() / 2);
  WriteFileBytes(path, cut);
  try {
    core::LoadModel(path);
    FAIL() << "truncated bundle must not load";
  } catch (const util::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("section `"), std::string::npos)
        << e.what();
  }
}

TEST_F(ModelIoFaultTest, EverySampledFlippedByteIsRejected) {
  const std::string path = ::testing::TempDir() + "/cfsf_flip_base.bin";
  const std::string flipped_path = ::testing::TempDir() + "/cfsf_flip.bin";
  core::SaveModel(Model(), path);
  const std::string data = ReadFileBytes(path);
  ASSERT_GT(data.size(), 64u);
  // Sample offsets with a prime stride so every region (header, size
  // fields, payloads, per-section CRCs, trailer) gets hit.
  std::size_t tested = 0;
  for (std::size_t offset = 0; offset < data.size(); offset += 97) {
    std::string corrupt = data;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    WriteFileBytes(flipped_path, corrupt);
    EXPECT_THROW(core::LoadModel(flipped_path), util::IoError)
        << "flipped byte at offset " << offset << " was accepted";
    EXPECT_THROW(core::VerifyModel(flipped_path), util::IoError)
        << "verify accepted flipped byte at offset " << offset;
    ++tested;
  }
  EXPECT_GT(tested, 10u);
  // The first and last bytes are edge cases worth pinning explicitly.
  for (const std::size_t offset : {std::size_t{0}, data.size() - 1}) {
    std::string corrupt = data;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    WriteFileBytes(flipped_path, corrupt);
    EXPECT_THROW(core::LoadModel(flipped_path), util::IoError);
  }
}

TEST_F(ModelIoFaultTest, PayloadFlipNamesItsSection) {
  const std::string path = ::testing::TempDir() + "/cfsf_flip_named.bin";
  const std::string flipped_path =
      ::testing::TempDir() + "/cfsf_flip_named_c.bin";
  core::SaveModel(Model(), path);
  const std::string data = ReadFileBytes(path);
  const auto report = core::VerifyModel(path);
  // Walk the framing to find each payload's start offset.
  std::size_t pos = 8;  // magic + version
  for (const auto& section : report.sections) {
    const std::size_t payload_start = pos + 8;
    std::string corrupt = data;
    const std::size_t target = payload_start + section.payload_bytes / 2;
    corrupt[target] = static_cast<char>(corrupt[target] ^ 0xFF);
    WriteFileBytes(flipped_path, corrupt);
    try {
      core::LoadModel(flipped_path);
      FAIL() << "flip inside section " << section.name << " was accepted";
    } catch (const util::IoError& e) {
      EXPECT_NE(std::string(e.what()).find("`" + section.name + "`"),
                std::string::npos)
          << "expected the error to name section " << section.name
          << ", got: " << e.what();
    }
    pos = payload_start + section.payload_bytes + 4;
  }
}

TEST_F(ModelIoFaultTest, InjectedSaveFaultLeavesTargetIntactAndNoTmp) {
  const std::string path = ::testing::TempDir() + "/cfsf_atomic.bin";
  core::SaveModel(Model(), path);
  const std::string before = ReadFileBytes(path);
  {
    ScopedFailPoint guard("model_io.save.write", "always");
    EXPECT_THROW(core::SaveModel(Model(), path), InjectedFault);
  }
  EXPECT_EQ(ReadFileBytes(path), before)
      << "a failed save must not touch the existing bundle";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "the temp file must be cleaned up after a failed save";
  EXPECT_NO_THROW(core::LoadModel(path));
}

TEST_F(ModelIoFaultTest, LoadWithRetrySurvivesTransientFaults) {
  const std::string path = ::testing::TempDir() + "/cfsf_retry.bin";
  core::SaveModel(Model(), path);
  auto& registry = FailPointRegistry::Global();
  auto& retries =
      obs::MetricsRegistry::Global().GetCounter("robust.load.retry");
  auto& giveups =
      obs::MetricsRegistry::Global().GetCounter("robust.load.giveup");
  const auto retries_before = retries.Value();
  const auto giveups_before = giveups.Value();
  registry.Arm("model_io.load.open", "first:2");
  core::LoadRetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::milliseconds(1);
  const auto loaded = core::LoadModelWithRetry(path, options);
  ASSERT_TRUE(loaded->fitted());
  EXPECT_EQ(registry.TripCount("model_io.load.open"), 2u);
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(retries.Value(), retries_before + 2);
    EXPECT_EQ(giveups.Value(), giveups_before)
        << "a load that eventually succeeds must not count as a giveup";
  }
}

TEST_F(ModelIoFaultTest, LoadWithRetryGivesUpAfterMaxAttempts) {
  const std::string path = ::testing::TempDir() + "/cfsf_retry_exhaust.bin";
  core::SaveModel(Model(), path);
  auto& registry = FailPointRegistry::Global();
  auto& retries =
      obs::MetricsRegistry::Global().GetCounter("robust.load.retry");
  auto& giveups =
      obs::MetricsRegistry::Global().GetCounter("robust.load.giveup");
  const auto retries_before = retries.Value();
  const auto giveups_before = giveups.Value();
  registry.Arm("model_io.load.read", "always");
  core::LoadRetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff = std::chrono::milliseconds(1);
  EXPECT_THROW(core::LoadModelWithRetry(path, options), InjectedFault);
  EXPECT_EQ(registry.TripCount("model_io.load.read"), 2u);
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(retries.Value(), retries_before + 1);
    EXPECT_EQ(giveups.Value(), giveups_before + 1);
  }
}

// ----------------------------------------------- armed end-to-end ----

// The PR's acceptance run: Evaluate over the ML_300/Given10 protocol
// with prob: failpoints armed and the fallback ladder in front — must
// finish with zero uncaught exceptions and nonzero fallback counters,
// and must reproduce the undegraded MAE exactly once disarmed.
TEST_F(ModelIoFaultTest, ArmedEvaluateDegradesButCompletes) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 350;
  dconfig.num_items = 400;
  const auto base = data::GenerateSynthetic(dconfig);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 300;
  pconfig.num_test_users = 50;
  pconfig.given_n = 10;
  const auto split = data::MakeGivenNSplit(base, pconfig);

  core::CfsfConfig config;
  config.num_clusters = 10;
  config.top_m_items = 30;
  config.top_k_users = 10;
  core::CfsfModel model(config);
  robust::FallbackPredictor ladder(model);

  // Disarmed, the ladder is a transparent wrapper: same MAE as the bare
  // model (Table II unchanged).
  const auto bare = eval::Evaluate(model, split);
  const auto disarmed = eval::Evaluate(ladder, split);
  EXPECT_DOUBLE_EQ(disarmed.mae, bare.mae);

  auto& registry = obs::MetricsRegistry::Global();
  const auto fallbacks_before =
      registry.GetCounter("robust.fallback.sir").Value() +
      registry.GetCounter("robust.fallback.user_mean").Value() +
      registry.GetCounter("robust.fallback.global_mean").Value();
  const auto trips_before =
      registry.GetCounter("robust.failpoint_trips").Value();

  FailPointRegistry::Global().SetSeed(2009);
  ScopedFailPoint full("cfsf.predict", "prob:0.05");
  ScopedFailPoint sir("cfsf.predict.sir", "prob:0.3");
  const auto armed = eval::Evaluate(ladder, split);  // must not throw
  EXPECT_TRUE(std::isfinite(armed.mae));
  EXPECT_GT(armed.num_predictions, 0u);
  EXPECT_LT(armed.mae, 2.0) << "degraded rungs should still be sane";

  EXPECT_GT(FailPointRegistry::Global().TripCount("cfsf.predict"), 0u);
  if (obs::MetricsEnabled()) {
    const auto fallbacks_after =
        registry.GetCounter("robust.fallback.sir").Value() +
        registry.GetCounter("robust.fallback.user_mean").Value() +
        registry.GetCounter("robust.fallback.global_mean").Value();
    EXPECT_GT(fallbacks_after, fallbacks_before);
    EXPECT_GT(registry.GetCounter("robust.failpoint_trips").Value(),
              trips_before);
  }
}

}  // namespace
}  // namespace cfsf
