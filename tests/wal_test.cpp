// Unit tests for the rating write-ahead log: frame encode/decode,
// append → replay round trips, segment rotation, fsync policies, the
// acked-record drain contract and graceful shutdown.  The crash and
// corruption halves of the contract live in tests/wal_crash_test.cpp
// (ctest label `fault`).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "matrix/types.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "wal/format.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

namespace fs = std::filesystem;

// --- hand-rolled version-1 segment encoding (upgrade-path fixtures) ---
//
// The production writer only emits the current format, so the v1
// back-compat tests craft their bytes here, straight from the format
// doc: 28-byte header with version 1, then 24-byte frames (no
// request_id), CRC over the first 20 bytes.

void PutU32At(std::string* out, std::size_t at, std::uint32_t value) {
  (*out)[at] = static_cast<char>(value);
  (*out)[at + 1] = static_cast<char>(value >> 8);
  (*out)[at + 2] = static_cast<char>(value >> 16);
  (*out)[at + 3] = static_cast<char>(value >> 24);
}

void PutU64At(std::string* out, std::size_t at, std::uint64_t value) {
  PutU32At(out, at, static_cast<std::uint32_t>(value));
  PutU32At(out, at + 4, static_cast<std::uint32_t>(value >> 32));
}

void PutCrcAt(std::string* out, std::size_t at, std::size_t payload) {
  PutU32At(out, at + payload,
           util::Crc32(reinterpret_cast<const unsigned char*>(out->data() + at),
                       payload));
}

std::string EncodeV1Segment(std::uint64_t seq, std::uint64_t first_lsn,
                            const std::vector<matrix::RatingTriple>& records) {
  std::string bytes(wal::kSegmentHeaderBytes +
                        records.size() * wal::kRecordBytesV1,
                    '\0');
  bytes.replace(0, 4, "CFWL");
  PutU32At(&bytes, 4, wal::kLegacyFormatVersion);
  PutU64At(&bytes, 8, seq);
  PutU64At(&bytes, 16, first_lsn);
  PutCrcAt(&bytes, 0, wal::kSegmentHeaderBytes - 4);
  std::size_t at = wal::kSegmentHeaderBytes;
  for (const matrix::RatingTriple& record : records) {
    PutU32At(&bytes, at, record.user);
    PutU32At(&bytes, at + 4, record.item);
    std::uint32_t rating_bits = 0;
    std::memcpy(&rating_bits, &record.value, sizeof(rating_bits));
    PutU32At(&bytes, at + 8, rating_bits);
    PutU64At(&bytes, at + 12, static_cast<std::uint64_t>(record.timestamp));
    PutCrcAt(&bytes, at, wal::kRecordBytesV1 - 4);
    at += wal::kRecordBytesV1;
  }
  return bytes;
}

matrix::RatingTriple MakeRecord(std::uint32_t i) {
  matrix::RatingTriple record;
  record.user = i;
  record.item = i * 7 + 1;
  record.value = static_cast<matrix::Rating>(1 + (i % 5));
  record.timestamp = static_cast<matrix::Timestamp>(1000000 + i);
  return record;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("cfsf_wal_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// ------------------------------------------------------------ format ----

TEST(WalFormatTest, RecordRoundTripsThroughTheFrame) {
  const matrix::RatingTriple record = MakeRecord(42);
  unsigned char frame[wal::kRecordBytes];
  wal::EncodeRecord(record, 0xFEEDFACEu, frame);
  matrix::RatingTriple decoded;
  std::uint64_t request_id = 0;
  ASSERT_TRUE(wal::DecodeRecord(frame, &decoded, &request_id));
  EXPECT_EQ(decoded, record);
  EXPECT_EQ(request_id, 0xFEEDFACEu);
}

TEST(WalFormatTest, AnySingleBitFlipFailsTheRecordCrc) {
  unsigned char frame[wal::kRecordBytes];
  wal::EncodeRecord(MakeRecord(7), 12345, frame);
  for (std::size_t byte = 0; byte < wal::kRecordBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      unsigned char bent[wal::kRecordBytes];
      std::copy(frame, frame + wal::kRecordBytes, bent);
      bent[byte] = static_cast<unsigned char>(bent[byte] ^ (1u << bit));
      matrix::RatingTriple decoded;
      std::uint64_t request_id = 0;
      EXPECT_FALSE(wal::DecodeRecord(bent, &decoded, &request_id))
          << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(WalFormatTest, RequestIdHashIsStableAndNeverZeroForNonEmpty) {
  EXPECT_EQ(wal::HashRequestId(""), 0u);  // absent id = no dedup
  const std::uint64_t h = wal::HashRequestId("client-42/retry");
  EXPECT_NE(h, 0u);
  EXPECT_EQ(h, wal::HashRequestId("client-42/retry"));  // deterministic
  EXPECT_NE(h, wal::HashRequestId("client-42/retrz"));
}

TEST(WalFormatTest, SegmentHeaderRoundTripsAndRejectsDamage) {
  wal::SegmentHeader header;
  header.seq = 42;
  header.first_lsn = 1009;
  unsigned char bytes[wal::kSegmentHeaderBytes];
  wal::EncodeSegmentHeader(header, bytes);
  wal::SegmentHeader decoded;
  ASSERT_TRUE(wal::DecodeSegmentHeader(bytes, &decoded));
  EXPECT_EQ(decoded.version, wal::kFormatVersion);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.first_lsn, 1009u);

  bytes[0] ^= 0x01;  // magic
  EXPECT_FALSE(wal::DecodeSegmentHeader(bytes, &decoded));
  bytes[0] ^= 0x01;
  bytes[9] ^= 0x40;  // seq
  EXPECT_FALSE(wal::DecodeSegmentHeader(bytes, &decoded));
}

TEST(WalFormatTest, SegmentFileNamesRoundTripAndRejectStrays) {
  EXPECT_EQ(wal::SegmentFileName(42), "wal-0000000042.log");
  std::uint64_t seq = 0;
  ASSERT_TRUE(wal::ParseSegmentFileName("wal-0000000042.log", &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(wal::ParseSegmentFileName("wal-0000000042.log.tmp", &seq));
  EXPECT_FALSE(wal::ParseSegmentFileName("wal-abc.log", &seq));
  EXPECT_FALSE(wal::ParseSegmentFileName("model.bin", &seq));
}

// ----------------------------------------------------------- append ----

TEST_F(WalTest, AppendReplayRoundTripPreservesEveryRecord) {
  std::vector<matrix::RatingTriple> written;
  {
    wal::WriteAheadLog log(dir_);
    for (std::uint32_t i = 0; i < 100; ++i) {
      written.push_back(MakeRecord(i));
      const wal::AppendAck ack = log.Append(written.back());
      EXPECT_EQ(ack.lsn, i + 1);
      EXPECT_TRUE(ack.durable);  // default policy: fsync per record
    }
    EXPECT_EQ(log.durable_lsn(), 100u);
  }
  const wal::ReplayResult replay = wal::ReplayLog(dir_);
  ASSERT_EQ(replay.records.size(), 100u);
  EXPECT_EQ(replay.next_lsn, 101u);
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].lsn, i + 1);
    EXPECT_EQ(replay.records[i].record, written[i]);
  }
}

TEST_F(WalTest, SegmentsRotateAtTheSizeCapAndReplayAcrossThem) {
  wal::WalOptions options;
  // Header + 4 records per segment.
  options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 4 * wal::kRecordBytes;
  {
    wal::WriteAheadLog log(dir_, options);
    for (std::uint32_t i = 0; i < 10; ++i) log.Append(MakeRecord(i));
  }
  const wal::ReplayResult replay = wal::ReplayLog(dir_);
  EXPECT_EQ(replay.records.size(), 10u);
  EXPECT_EQ(replay.segments, 3u);  // 4 + 4 + 2
  EXPECT_EQ(replay.tail_seq, 3u);
}

TEST_F(WalTest, ReopeningAppendsAfterTheLastDurableRecord) {
  {
    wal::WriteAheadLog log(dir_);
    for (std::uint32_t i = 0; i < 5; ++i) log.Append(MakeRecord(i));
  }
  std::vector<wal::RecoveredRecord> recovered;
  wal::WriteAheadLog log(dir_, {}, &recovered);
  ASSERT_EQ(recovered.size(), 5u);
  EXPECT_EQ(log.next_lsn(), 6u);
  const wal::AppendAck ack = log.Append(MakeRecord(99));
  EXPECT_EQ(ack.lsn, 6u);
  log.Close();
  EXPECT_EQ(wal::ReplayLog(dir_).records.size(), 6u);
}

TEST_F(WalTest, EveryNPolicyAcksDurablyOnlyAtTheBarrier) {
  wal::WalOptions options;
  options.fsync_policy = wal::FsyncPolicy::kEveryN;
  options.fsync_every_n = 4;
  wal::WriteAheadLog log(dir_, options);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(log.Append(MakeRecord(i)).durable);
  }
  EXPECT_EQ(log.durable_lsn(), 0u);
  EXPECT_TRUE(log.Append(MakeRecord(3)).durable);  // 4th record: barrier
  EXPECT_EQ(log.durable_lsn(), 4u);
  // require_durable overrides the batching policy.
  EXPECT_TRUE(log.Append(MakeRecord(4), /*require_durable=*/true).durable);
  EXPECT_EQ(log.durable_lsn(), 5u);
}

TEST_F(WalTest, SyncPromotesBufferedRecordsToAcked) {
  wal::WalOptions options;
  options.fsync_policy = wal::FsyncPolicy::kEveryN;
  options.fsync_every_n = 100;  // never reached
  wal::WriteAheadLog log(dir_, options);
  for (std::uint32_t i = 0; i < 5; ++i) log.Append(MakeRecord(i));
  std::vector<wal::AckedRecord> drained;
  EXPECT_EQ(log.DrainAcked(&drained), 0u);  // nothing durable yet
  log.Sync();
  EXPECT_EQ(log.durable_lsn(), 5u);
  EXPECT_EQ(log.DrainAcked(&drained), 5u);
  ASSERT_EQ(drained.size(), 5u);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].lsn, i + 1);
    EXPECT_EQ(drained[i].record, MakeRecord(static_cast<std::uint32_t>(i)));
  }
  // A drain is a move: the records are handed over exactly once.
  std::vector<wal::AckedRecord> again;
  EXPECT_EQ(log.DrainAcked(&again), 0u);
}

TEST_F(WalTest, TimedPolicySyncsOnceTheIntervalElapses) {
  wal::WalOptions options;
  options.fsync_policy = wal::FsyncPolicy::kTimed;
  options.fsync_interval = std::chrono::milliseconds(0);  // always elapsed
  wal::WriteAheadLog log(dir_, options);
  EXPECT_TRUE(log.Append(MakeRecord(0)).durable);
}

TEST_F(WalTest, ValidationRejectsAbsurdOptions) {
  wal::WalOptions options;
  options.max_segment_bytes = 8;  // cannot hold header + one record
  EXPECT_THROW(wal::WriteAheadLog(dir_, options), util::Error);
}

// ------------------------------------------------------------- close ----

TEST_F(WalTest, CloseIsIdempotentAndRefusesLaterAppends) {
  wal::WriteAheadLog log(dir_);
  log.Append(MakeRecord(0));
  log.Close();
  log.Close();
  EXPECT_FALSE(log.available());
  EXPECT_EQ(log.unavailable_reason(), "closed");
  EXPECT_THROW(log.Append(MakeRecord(1)), util::IoError);
  // Acked records remain drainable after close.
  std::vector<wal::AckedRecord> drained;
  EXPECT_EQ(log.DrainAcked(&drained), 1u);
}

// ------------------------------------------------------------ replay ----

TEST_F(WalTest, ReplayOfAMissingDirectoryThrows) {
  EXPECT_THROW(wal::ReplayLog(dir_ + "/nope"), util::IoError);
}

TEST_F(WalTest, ReplayOfAnEmptyLogYieldsLsnOne) {
  { wal::WriteAheadLog log(dir_); }
  const wal::ReplayResult replay = wal::ReplayLog(dir_);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.next_lsn, 1u);
  EXPECT_EQ(replay.segments, 1u);
}

// ----------------------------------------------------------- upgrade ----

TEST_F(WalTest, ReopeningAV1LogSealsTheTailAndAppendsIntoAV2Segment) {
  // A log written entirely by the v1 code: one segment, three 24-byte
  // frames.  Appending 32-byte v2 frames into it would make the next
  // replay decode at the wrong stride and truncate them as a torn tail.
  std::vector<matrix::RatingTriple> old_records;
  for (std::uint32_t i = 0; i < 3; ++i) old_records.push_back(MakeRecord(i));
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ + "/" + wal::SegmentFileName(1), std::ios::binary);
    const std::string bytes = EncodeV1Segment(1, 1, old_records);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The v2 writer recovers the v1 history and keeps appending.
  std::vector<wal::RecoveredRecord> recovered;
  {
    wal::WriteAheadLog log(dir_, {}, &recovered);
    ASSERT_EQ(recovered.size(), 3u);
    for (std::uint32_t i = 3; i < 6; ++i) {
      const wal::AppendAck ack = log.Append(MakeRecord(i));
      EXPECT_EQ(ack.lsn, i + 1);
      EXPECT_TRUE(ack.durable);
    }
  }

  // Restart: the v1 prefix and the v2 suffix both survive replay.
  const wal::ReplayResult replay = wal::ReplayLog(dir_);
  ASSERT_EQ(replay.records.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(replay.records[i].lsn, i + 1);
    EXPECT_EQ(replay.records[i].record, MakeRecord(i));
  }
  // The v1 tail was sealed, never appended to: the new records live in
  // a fresh v2 segment with a contiguous lsn range.
  ASSERT_EQ(replay.segment_infos.size(), 2u);
  EXPECT_EQ(replay.segment_infos[0].version, wal::kLegacyFormatVersion);
  EXPECT_EQ(replay.segment_infos[0].records, 3u);
  EXPECT_EQ(replay.segment_infos[1].version, wal::kFormatVersion);
  EXPECT_EQ(replay.segment_infos[1].first_lsn, 4u);
  EXPECT_EQ(replay.segment_infos[1].records, 3u);

  // A second reopen finds a current-format tail and appends in place —
  // sealing happens once per upgrade, not on every restart.
  {
    wal::WriteAheadLog log(dir_);
    EXPECT_EQ(log.Append(MakeRecord(6)).lsn, 7u);
  }
  const wal::ReplayResult again = wal::ReplayLog(dir_);
  EXPECT_EQ(again.records.size(), 7u);
  EXPECT_EQ(again.segments, 2u);
}

TEST_F(WalTest, RecoveryRemovesTmpLeftoversOnlyInRepairMode) {
  { wal::WriteAheadLog log(dir_); }
  const std::string tmp = dir_ + "/" + wal::SegmentFileName(9) + ".tmp";
  { std::ofstream out(tmp, std::ios::binary); out << "half a header"; }
  EXPECT_EQ(wal::ReplayLog(dir_).removed_tmp, 0u);  // read-only scan
  EXPECT_TRUE(fs::exists(tmp));
  wal::ReplayOptions repair;
  repair.repair = true;
  EXPECT_EQ(wal::ReplayLog(dir_, repair).removed_tmp, 1u);
  EXPECT_FALSE(fs::exists(tmp));
}

}  // namespace
}  // namespace cfsf
