// Unit tests for the HTTP message layer (src/net/http.hpp) and the wire
// format (src/net/wire.hpp): incremental parsing, keep-alive semantics,
// size caps, strict JSON body parsing and response rendering.
#include <gtest/gtest.h>

#include <string>

#include "net/http.hpp"
#include "net/wire.hpp"
#include "obs/json.hpp"
#include "serve/api.hpp"

namespace cfsf {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::RequestParser;
using serve::Request;
using serve::Response;
using serve::StatusCode;

RequestParser::State FeedAll(RequestParser& parser, const std::string& text) {
  return parser.Feed(text.data(), text.size());
}

// ------------------------------------------------------ http parsing ----

TEST(RequestParserTest, ParsesASimpleGet) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            RequestParser::State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
}

TEST(RequestParserTest, IsIncrementalAcrossArbitrarySplits) {
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 7\r\n\r\npayload";
  // Feed one byte at a time; the parse must complete exactly at the end.
  RequestParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Feed(&wire[i], 1), RequestParser::State::kIncomplete)
        << "completed early at byte " << i;
  }
  ASSERT_EQ(parser.Feed(&wire[wire.size() - 1], 1),
            RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "payload");
}

TEST(RequestParserTest, HeaderNamesAreCaseInsensitive) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "GET / HTTP/1.1\r\nX-CFSF-Trace-Id:  abc \r\n\r\n"),
            RequestParser::State::kComplete);
  ASSERT_NE(parser.request().FindHeader("x-cfsf-trace-id"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("x-cfsf-trace-id"), "abc");
}

TEST(RequestParserTest, ConnectionCloseAndHttp10EndKeepAlive) {
  RequestParser close_parser;
  ASSERT_EQ(FeedAll(close_parser,
                    "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            RequestParser::State::kComplete);
  EXPECT_FALSE(close_parser.request().keep_alive);

  RequestParser old_parser;
  ASSERT_EQ(FeedAll(old_parser, "GET / HTTP/1.0\r\n\r\n"),
            RequestParser::State::kComplete);
  EXPECT_FALSE(old_parser.request().keep_alive);
}

TEST(RequestParserTest, PipelinedSecondRequestSurvivesReset) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  parser.Reset();
  ASSERT_EQ(parser.state(), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  parser.Reset();
  EXPECT_EQ(parser.state(), RequestParser::State::kIncomplete);
  EXPECT_FALSE(parser.HasPartialData());
}

TEST(RequestParserTest, PartialDataIsVisibleForDrainDecisions) {
  RequestParser parser;
  EXPECT_FALSE(parser.HasPartialData());
  const std::string half = "POST /v1/predict HT";
  parser.Feed(half.data(), half.size());
  EXPECT_TRUE(parser.HasPartialData());
}

TEST(RequestParserTest, RejectsGarbageAndOversizedMessages) {
  RequestParser garbage;
  EXPECT_EQ(FeedAll(garbage, "not an http request\r\n\r\n"),
            RequestParser::State::kError);

  RequestParser bad_length;
  EXPECT_EQ(FeedAll(bad_length,
                    "POST / HTTP/1.1\r\nContent-Length: soon\r\n\r\n"),
            RequestParser::State::kError);

  RequestParser huge_body;
  EXPECT_EQ(FeedAll(huge_body,
                    "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
            RequestParser::State::kError);

  RequestParser huge_header;
  const std::string flood(net::kMaxHeaderBytes + 1, 'a');
  EXPECT_EQ(FeedAll(huge_header, flood), RequestParser::State::kError);

  RequestParser chunked;
  EXPECT_EQ(FeedAll(chunked,
                    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            RequestParser::State::kError);
}

TEST(HttpTargetTest, SplitsPathAndDecodesQuery) {
  std::string path;
  std::vector<std::pair<std::string, std::string>> query;
  ASSERT_TRUE(net::ParseTarget("/v1/top-n?user=3&n=5&tag=a%2Fb+c", &path,
                               &query));
  EXPECT_EQ(path, "/v1/top-n");
  ASSERT_EQ(query.size(), 3u);
  EXPECT_EQ(query[0].first, "user");
  EXPECT_EQ(query[0].second, "3");
  EXPECT_EQ(query[2].second, "a/b c");

  EXPECT_FALSE(net::ParseTarget("/x?bad=%zz", &path, &query));
}

TEST(HttpSerializeTest, EmitsFramingAndConnectionHeaders) {
  HttpResponse response;
  response.status = 429;
  response.body = "{}";
  response.Set("Retry-After", "1");
  const std::string wire = net::Serialize(response, /*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// ------------------------------------------------------- wire bodies ----

TEST(WireTest, ParsesPredictBody) {
  const net::BodyParse parse =
      net::ParsePredictBody("{\"user\": 3, \"item\": 7, \"rung_floor\": 1}");
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.request.kind, Request::Kind::kPredict);
  EXPECT_EQ(parse.request.user, 3u);
  EXPECT_EQ(parse.request.item, 7u);
  EXPECT_EQ(parse.request.rung_floor, 1u);
}

TEST(WireTest, PredictBodyIsStrict) {
  EXPECT_FALSE(net::ParsePredictBody("").ok);
  EXPECT_FALSE(net::ParsePredictBody("{}").ok);                // missing keys
  EXPECT_FALSE(net::ParsePredictBody("{\"user\": 1}").ok);     // no item
  EXPECT_FALSE(net::ParsePredictBody(
                   "{\"user\": 1, \"item\": 2, \"x\": 3}").ok);  // unknown
  EXPECT_FALSE(net::ParsePredictBody(
                   "{\"user\": -1, \"item\": 2}").ok);  // negative
  EXPECT_FALSE(net::ParsePredictBody(
                   "{\"user\": 1, \"item\": 2} trailing").ok);
}

TEST(WireTest, ParsesBatchBodyAndEnforcesTheCap) {
  const net::BodyParse parse = net::ParseBatchBody(
      "{\"queries\": [[0, 1], [2, 3]]}", /*max_batch=*/10);
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.request.kind, Request::Kind::kPredictBatch);
  ASSERT_EQ(parse.request.queries.size(), 2u);
  EXPECT_EQ(parse.request.queries[1].first, 2u);
  EXPECT_EQ(parse.request.queries[1].second, 3u);

  EXPECT_FALSE(net::ParseBatchBody("{\"queries\": []}", 10).ok);
  EXPECT_FALSE(
      net::ParseBatchBody("{\"queries\": [[0, 1], [2, 3]]}", 1).ok);
  EXPECT_FALSE(net::ParseBatchBody("{\"queries\": [[0]]}", 10).ok);
}

TEST(WireTest, ParsesRateBodyAndEnforcesTheRatingRange) {
  const net::BodyParse parse = net::ParseRateBody(
      "{\"user\": 3, \"item\": 7, \"rating\": 5, \"timestamp\": 123}");
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.request.kind, Request::Kind::kRate);
  EXPECT_EQ(parse.request.user, 3u);
  EXPECT_EQ(parse.request.item, 7u);
  EXPECT_EQ(parse.request.rating, 5.0F);
  EXPECT_EQ(parse.request.rating_timestamp, 123);

  // Timestamp is optional; everything else is required and strict.
  EXPECT_TRUE(
      net::ParseRateBody("{\"user\": 1, \"item\": 2, \"rating\": 3}").ok);
  EXPECT_FALSE(net::ParseRateBody("").ok);
  EXPECT_FALSE(net::ParseRateBody("{\"user\": 1, \"item\": 2}").ok);
  EXPECT_FALSE(
      net::ParseRateBody("{\"user\": 1, \"item\": 2, \"rating\": 0}").ok);
  EXPECT_FALSE(
      net::ParseRateBody("{\"user\": 1, \"item\": 2, \"rating\": 6}").ok);
  EXPECT_FALSE(net::ParseRateBody(
                   "{\"user\": 1, \"item\": 2, \"rating\": 3, \"x\": 4}").ok);
}

TEST(WireTest, RateResponseCarriesTheLsn) {
  Response acked;
  acked.code = StatusCode::kOk;
  acked.lsn = 42;
  const std::string doc = net::RenderResponseJson(Request::Kind::kRate, acked);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(doc, &error)) << error;
  EXPECT_NE(doc.find("\"lsn\":42"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("\"predictions\""), std::string::npos) << doc;
}

TEST(WireTest, RenderedResponsesAreValidJson) {
  Response ok;
  ok.code = StatusCode::kOk;
  ok.generation = 3;
  ok.trace_id = "t-1";
  ok.predictions.push_back({1, 2, 4.5, robust::PredictionRung::kFull, false});
  const std::string predict_doc =
      net::RenderResponseJson(Request::Kind::kPredict, ok);
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(predict_doc, &error)) << error;
  EXPECT_NE(predict_doc.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(predict_doc.find("\"rung\":\"full\""), std::string::npos);

  Response ranked;
  ranked.code = StatusCode::kOk;
  ranked.ranked.push_back({7, 4.9});
  const std::string topn_doc =
      net::RenderResponseJson(Request::Kind::kTopN, ranked);
  EXPECT_TRUE(obs::ValidateJson(topn_doc, &error)) << error;
  EXPECT_NE(topn_doc.find("\"ranked\""), std::string::npos);

  Response refused;
  refused.code = StatusCode::kShed;
  refused.message = "queue full";
  const std::string refused_doc =
      net::RenderResponseJson(Request::Kind::kPredict, refused);
  EXPECT_TRUE(obs::ValidateJson(refused_doc, &error)) << error;
  EXPECT_NE(refused_doc.find("\"message\":\"queue full\""),
            std::string::npos);

  const std::string error_doc =
      net::RenderErrorJson(StatusCode::kNotFound, "no route", "t-2");
  EXPECT_TRUE(obs::ValidateJson(error_doc, &error)) << error;
  EXPECT_NE(error_doc.find("\"status\":\"not_found\""), std::string::npos);
}

}  // namespace
}  // namespace cfsf
