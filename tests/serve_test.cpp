// Tests for the resilient serving layer: circuit-breaker state machine,
// admission control (shedding, watermark degrade/reject), deadline
// propagation, hot model swap, dispatch-fault survival, the durable
// Rate verb (write-ahead log + DeltaFolder fold-and-publish) — and the
// chaos soak that drives all of it at once under randomized failpoint
// schedules (ctest labels: fault + stress).
//
// Everything speaks the unified serve::Request/serve::Response API.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "data/synthetic.hpp"
#include "obs/failpoint.hpp"
#include "serve/api.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/delta_folder.hpp"
#include "serve/model_generation.hpp"
#include "serve/serving_stack.hpp"
#include "serve/soak.hpp"
#include "util/error.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::ScopedFailPoint;
using robust::PredictionRung;
using serve::BreakerPlan;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::ModelGeneration;
using serve::Request;
using serve::Response;
using serve::ServingOptions;
using serve::ServingStack;
using serve::StatusCode;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  /// One fitted model shared by every test (fitting is the slow part).
  static std::unique_ptr<core::CfsfModel> FreshModel() {
    data::SyntheticConfig dconfig;
    dconfig.num_users = 60;
    dconfig.num_items = 80;
    dconfig.min_ratings_per_user = 15;
    dconfig.max_ratings_per_user = 30;  // leave unrated items for top-N
    core::CfsfConfig config;
    config.num_clusters = 5;
    config.top_m_items = 15;
    config.top_k_users = 8;
    auto model = std::make_unique<core::CfsfModel>(config);
    model->Fit(data::GenerateSynthetic(dconfig));
    return model;
  }

  static ModelGeneration& Models() {
    static ModelGeneration* models = [] {
      auto* m = new ModelGeneration();  // cfsf-lint: allow(naked-new)
      m->Install(FreshModel());
      return m;
    }();
    return *models;
  }
};

// ------------------------------------------------- circuit breaker ----

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_threshold = 0.5;
  options.cooldown = std::chrono::milliseconds(1);
  options.probe_count = 2;
  options.probe_success_threshold = 1.0;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAtFullFusion) {
  CircuitBreaker breaker(FastBreaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.level(), 0u);
  const BreakerPlan plan = breaker.Admit();
  EXPECT_EQ(plan.level, 0u);
  EXPECT_FALSE(plan.probe);
}

TEST(CircuitBreakerTest, TripsOnBadWindowAndStepsDownOneTier) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) {
    breaker.Record(breaker.Admit(), 0, /*bad=*/true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndRecoversOnGoodProbes) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  ASSERT_EQ(breaker.level(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  // First Admit past the cooldown half-opens and issues a probe one
  // tier up; good probes recover the tier and close the breaker.
  for (int i = 0; i < 2; ++i) {
    const BreakerPlan plan = breaker.Admit();
    ASSERT_TRUE(plan.probe);
    ASSERT_EQ(plan.level, 0u);
    breaker.Record(plan, plan.level, /*bad=*/false);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.recoveries(), 1u);
}

TEST(CircuitBreakerTest, FailedProbesReopenAtCurrentLevel) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  for (int i = 0; i < 2; ++i) {
    const BreakerPlan plan = breaker.Admit();
    ASSERT_TRUE(plan.probe);
    breaker.Record(plan, plan.level, /*bad=*/true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.recoveries(), 0u);
}

TEST(CircuitBreakerTest, StaleProbeOutcomeIsIgnored) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const BreakerPlan p1 = breaker.Admit();
  const BreakerPlan p2 = breaker.Admit();
  ASSERT_TRUE(p1.probe && p2.probe);
  breaker.Record(p1, p1.level, /*bad=*/true);
  breaker.Record(p2, p2.level, /*bad=*/true);  // episode fails; re-open
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const BreakerPlan q1 = breaker.Admit();  // fresh half-open episode
  ASSERT_TRUE(q1.probe);
  // Replaying the dead episode's probes must not leak into the new one.
  breaker.Record(p1, p1.level, /*bad=*/false);
  breaker.Record(p2, p2.level, /*bad=*/false);
  EXPECT_EQ(breaker.recoveries(), 0u);
  EXPECT_EQ(breaker.level(), 1u);
  // The live episode still concludes on its own probes.
  const BreakerPlan q2 = breaker.Admit();
  ASSERT_TRUE(q2.probe);
  breaker.Record(q1, q1.level, /*bad=*/false);
  breaker.Record(q2, q2.level, /*bad=*/false);
  EXPECT_EQ(breaker.recoveries(), 1u);
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, RepeatedTripsBottomOutAtGlobalMean) {
  CircuitBreakerOptions options = FastBreaker();
  options.cooldown = std::chrono::hours(1);  // never half-open here
  CircuitBreaker breaker(options);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      const BreakerPlan plan = breaker.Admit();
      breaker.Record(plan, plan.level, true);
    }
  }
  EXPECT_EQ(breaker.level(), options.max_level);
  EXPECT_LE(breaker.trips(), options.max_level);
}

TEST(CircuitBreakerTest, RejectsNonsenseOptions) {
  CircuitBreakerOptions options;
  options.window = 0;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.min_samples = options.window + 1;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.trip_threshold = 0.0;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.max_level = 4;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
}

// ----------------------------------------------------- status codes ----

TEST(StatusCodeTest, HttpMappingIsTotalAndStable) {
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kOk), 200);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kShed), 503);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kRejected), 429);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kBreakerOpen), 503);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kNotFound), 404);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kMalformed), 400);
  EXPECT_EQ(serve::ToHttpStatus(StatusCode::kInternal), 500);
}

TEST(StatusCodeTest, RetryableStatusesAreTheBackpressureOnes) {
  EXPECT_TRUE(serve::IsRetryable(StatusCode::kShed));
  EXPECT_TRUE(serve::IsRetryable(StatusCode::kRejected));
  EXPECT_TRUE(serve::IsRetryable(StatusCode::kBreakerOpen));
  EXPECT_FALSE(serve::IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(serve::IsRetryable(StatusCode::kMalformed));
  EXPECT_FALSE(serve::IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(serve::IsRetryable(StatusCode::kInternal));
}

TEST(RequestTest, ValidationCatchesNonsense) {
  Request bad_floor = Request::Predict(0, 0);
  bad_floor.rung_floor = 4;
  EXPECT_FALSE(bad_floor.ValidationError().empty());

  const Request empty_batch = Request::PredictBatch({});
  EXPECT_FALSE(empty_batch.ValidationError().empty());

  const Request zero_n = Request::TopN(0, 0);
  EXPECT_FALSE(zero_n.ValidationError().empty());

  Request degraded_topn = Request::TopN(0, 5);
  degraded_topn.rung_floor = 1;
  EXPECT_FALSE(degraded_topn.ValidationError().empty());

  EXPECT_TRUE(Request::Predict(0, 0).ValidationError().empty());
  EXPECT_TRUE(Request::TopN(0, 5).ValidationError().empty());
}

// ---------------------------------------------------- serving stack ----

ServingOptions SmallStack() {
  ServingOptions options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  options.degrade_watermark = 24;
  options.breaker = FastBreaker();
  return options;
}

TEST_F(ServeTest, ServesFullFusionWhenHealthy) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::Predict(0, 0));
  EXPECT_EQ(response.code, StatusCode::kOk);
  ASSERT_EQ(response.predictions.size(), 1u);
  EXPECT_EQ(response.predictions[0].rung, PredictionRung::kFull);
  EXPECT_GE(response.predictions[0].value, 1.0);
  EXPECT_LE(response.predictions[0].value, 5.0);
  EXPECT_GT(response.generation, 0u);
  EXPECT_FALSE(response.deadline_overrun());
}

TEST_F(ServeTest, TraceIdIsEchoedVerbatim) {
  ServingStack stack(Models(), SmallStack());
  Request request = Request::Predict(0, 0);
  request.trace_id = "trace-42";
  EXPECT_EQ(stack.ServeSync(request).trace_id, "trace-42");
  // Even on refused requests.
  Request malformed = Request::PredictBatch({});
  malformed.trace_id = "trace-43";
  const Response refused = stack.ServeSync(malformed);
  EXPECT_EQ(refused.code, StatusCode::kMalformed);
  EXPECT_EQ(refused.trace_id, "trace-43");
}

TEST_F(ServeTest, MalformedRequestsRefuseBeforeAdmission) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::PredictBatch({}));
  EXPECT_EQ(response.code, StatusCode::kMalformed);
  EXPECT_FALSE(response.message.empty());
  EXPECT_EQ(stack.QueueDepth(), 0u);
}

TEST_F(ServeTest, RungFloorForcesACheaperRung) {
  ServingStack stack(Models(), SmallStack());
  Request request = Request::Predict(0, 0);
  request.rung_floor = 2;  // at best user mean
  const Response response = stack.ServeSync(request);
  EXPECT_EQ(response.code, StatusCode::kOk);
  ASSERT_EQ(response.predictions.size(), 1u);
  EXPECT_GE(response.predictions[0].rung, PredictionRung::kUserMean);
  EXPECT_GE(response.tier, 2u);
}

TEST_F(ServeTest, ExpiredDeadlineDegradesInsteadOfBlocking) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::Predict(
      1, 1, robust::Deadline::After(std::chrono::microseconds(0))));
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_TRUE(response.deadline_overrun());
  ASSERT_EQ(response.predictions.size(), 1u);
  EXPECT_GE(response.predictions[0].rung, PredictionRung::kUserMean);
  EXPECT_TRUE(std::isfinite(response.predictions[0].value));
}

TEST_F(ServeTest, BatchServesEveryQueryInOrder) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(
      Request::PredictBatch({{0, 0}, {1, 1}, {2, 2}}));
  EXPECT_EQ(response.code, StatusCode::kOk);
  ASSERT_EQ(response.predictions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(response.predictions[i].user, i);
    EXPECT_EQ(response.predictions[i].item, i);
    EXPECT_TRUE(std::isfinite(response.predictions[i].value));
  }
}

TEST_F(ServeTest, TopNServesRankedItemsWhenHealthy) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::TopN(0, 5));
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_TRUE(response.predictions.empty());
  ASSERT_LE(response.ranked.size(), 5u);
  ASSERT_GE(response.ranked.size(), 1u);
  for (std::size_t i = 1; i < response.ranked.size(); ++i) {
    EXPECT_LE(response.ranked[i].score, response.ranked[i - 1].score);
  }
}

TEST_F(ServeTest, TopNForUnknownUserIsNotFound) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::TopN(1000000, 5));
  EXPECT_EQ(response.code, StatusCode::kNotFound);
}

TEST_F(ServeTest, AdmissionFailpointShedsInsteadOfThrowing) {
  ServingStack stack(Models(), SmallStack());
  ScopedFailPoint guard("serve.admit", "always");
  const Response response = stack.ServeSync(Request::Predict(0, 0));
  EXPECT_EQ(response.code, StatusCode::kShed);
}

TEST_F(ServeTest, WatermarkDegradesThenCapacitySheds) {
  // One worker, pinned down by a big batch: singles pile up behind it
  // and walk the admission ladder deterministically.
  ServingOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.degrade_watermark = 1;
  options.watermark_level = 2;
  options.breaker = FastBreaker();
  ServingStack stack(Models(), options);

  std::vector<std::pair<matrix::UserId, matrix::ItemId>> big(
      100000, {0, 0});
  auto batch_future = stack.Submit(Request::PredictBatch(std::move(big)));
  // depth 1 >= watermark: everything below is admitted degraded.
  auto degraded_a = stack.Submit(Request::Predict(2, 2));  // depth 2
  auto degraded_b = stack.Submit(Request::Predict(3, 3));  // depth 3
  auto degraded_c = stack.Submit(Request::Predict(4, 4));  // depth 4 == cap
  const Response shed = stack.ServeSync(Request::Predict(5, 5));
  EXPECT_EQ(shed.code, StatusCode::kShed);

  const Response a = ServingStack::Await(degraded_a);
  const Response b = ServingStack::Await(degraded_b);
  const Response c = ServingStack::Await(degraded_c);
  for (const Response* r : {&a, &b, &c}) {
    EXPECT_EQ(r->code, StatusCode::kOk);
    EXPECT_GE(r->tier, 2u);
    ASSERT_EQ(r->predictions.size(), 1u);
    EXPECT_GE(r->predictions[0].rung, PredictionRung::kUserMean);
  }
  const Response batch = ServingStack::Await(batch_future);
  EXPECT_EQ(batch.predictions.size(), 100000u);
  EXPECT_LE(stack.MaxDepthSeen(), options.queue_capacity);
}

TEST_F(ServeTest, WatermarkRejectPolicyRefuses) {
  ServingOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.degrade_watermark = 1;
  options.watermark_policy = serve::WatermarkPolicy::kReject;
  options.breaker = FastBreaker();
  ServingStack stack(Models(), options);

  std::vector<std::pair<matrix::UserId, matrix::ItemId>> big(
      100000, {0, 0});
  auto batch_future = stack.Submit(Request::PredictBatch(std::move(big)));
  const Response rejected = stack.ServeSync(Request::Predict(1, 1));
  EXPECT_EQ(rejected.code, StatusCode::kRejected);
  ServingStack::Await(batch_future);
}

TEST_F(ServeTest, WorkerFaultYieldsErrorResultAndStackSurvives) {
  ServingStack stack(Models(), SmallStack());
  {
    ScopedFailPoint guard("serve.worker", "always");
    const Response response = stack.ServeSync(Request::Predict(0, 0));
    EXPECT_EQ(response.code, StatusCode::kInternal);
    EXPECT_FALSE(response.message.empty());
  }
  EXPECT_EQ(stack.ServeSync(Request::Predict(0, 0)).code, StatusCode::kOk);
  EXPECT_EQ(stack.QueueDepth(), 0u);
}

TEST_F(ServeTest, DispatchFaultBreaksPromiseNotTheClient) {
  ServingStack stack(Models(), SmallStack());
  {
    // threadpool.task fires before the task closure runs: the promise
    // inside the destroyed closure breaks.  The client must still get a
    // (kInternal) answer and the queue slot must be released.
    ScopedFailPoint guard("threadpool.task", "always");
    const Response response = stack.ServeSync(Request::Predict(0, 0));
    EXPECT_EQ(response.code, StatusCode::kInternal);
    EXPECT_NE(response.message.find("dropped at dispatch"),
              std::string::npos);
  }
  stack.Drain();
  EXPECT_EQ(stack.QueueDepth(), 0u);
  // Drained stacks shed; a fresh stack over the same models still works.
  EXPECT_EQ(stack.ServeSync(Request::Predict(0, 0)).code, StatusCode::kShed);
}

TEST_F(ServeTest, BreakerTripsAndRecoversThroughTheStack) {
  ServingOptions options = SmallStack();
  options.num_workers = 1;  // keep outcome ordering deterministic
  ServingStack stack(Models(), options);
  {
    // Full fusion faults on every request: planned-rung misses score bad,
    // the breaker steps the stack down to the SIR′ tier.
    ScopedFailPoint guard("cfsf.predict", "always");
    for (int i = 0; i < 16 && stack.breaker().level() == 0; ++i) {
      stack.ServeSync(Request::Predict(0, 0));
    }
    EXPECT_GE(stack.breaker().trips(), 1u);
    EXPECT_EQ(stack.breaker().level(), 1u);
  }
  // A degraded stack cannot rank: top-N refuses with kBreakerOpen
  // (and the refusal must not itself count as a bad outcome).
  const Response refused = stack.ServeSync(Request::TopN(0, 5));
  EXPECT_EQ(refused.code, StatusCode::kBreakerOpen);
  // Fault cleared: half-open probes climb back to full fusion.
  for (int i = 0; i < 5000 && stack.breaker().level() != 0; ++i) {
    stack.ServeSync(Request::Predict(0, 0));
    if (i % 100 == 99) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(stack.breaker().level(), 0u);
  EXPECT_EQ(stack.breaker().state(), BreakerState::kClosed);
  EXPECT_GE(stack.breaker().recoveries(), 1u);
  // Back at full fusion, rankings serve again.
  EXPECT_EQ(stack.ServeSync(Request::TopN(0, 5)).code, StatusCode::kOk);
}

// ------------------------------------------------ durable ingestion ----

std::string FreshWalDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST_F(ServeTest, RateWithoutALogIsUnavailableAndRetryable) {
  ServingStack stack(Models(), SmallStack());
  const Response response = stack.ServeSync(Request::Rate(0, 0, 4.0F));
  EXPECT_EQ(response.code, StatusCode::kUnavailable);
  EXPECT_TRUE(serve::IsRetryable(response.code));
  EXPECT_NE(response.message.find("read-only"), std::string::npos);
}

TEST_F(ServeTest, RateValidatesTheRatingRangeBeforeTheLog) {
  ServingStack stack(Models(), SmallStack());
  EXPECT_EQ(stack.ServeSync(Request::Rate(0, 0, 9.0F)).code,
            StatusCode::kMalformed);
  EXPECT_EQ(stack.ServeSync(Request::Rate(0, 0, 0.0F)).code,
            StatusCode::kMalformed);
}

TEST_F(ServeTest, RateAcksDurablyWithTheLogsLsn) {
  const std::string dir = FreshWalDir("cfsf_serve_rate_ack");
  wal::WriteAheadLog log(dir);
  ServingOptions options = SmallStack();
  options.rating_log = &log;
  ServingStack stack(Models(), options);

  const Response first = stack.ServeSync(Request::Rate(3, 7, 5.0F, 123));
  ASSERT_EQ(first.code, StatusCode::kOk);
  EXPECT_EQ(first.lsn, 1u);
  const Response second = stack.ServeSync(Request::Rate(4, 8, 2.0F));
  EXPECT_EQ(second.lsn, 2u);
  EXPECT_EQ(log.durable_lsn(), 2u);  // acked => already fsynced

  log.Close();
  const wal::ReplayResult replay = wal::ReplayLog(dir);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].record,
            (matrix::RatingTriple{3, 7, 5.0F, 123}));
  EXPECT_EQ(replay.records[1].record, (matrix::RatingTriple{4, 8, 2.0F, 0}));
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, RateWithAnExpiredDeadlineRefusesBeforeTheLog) {
  const std::string dir = FreshWalDir("cfsf_serve_rate_deadline");
  wal::WriteAheadLog log(dir);
  ServingOptions options = SmallStack();
  options.rating_log = &log;
  ServingStack stack(Models(), options);
  const Response response = stack.ServeSync(
      Request::Rate(0, 0, 3.0F, 0,
                    robust::Deadline::After(std::chrono::microseconds(0))));
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(log.next_lsn(), 1u);  // nothing was appended
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, FsyncFaultDegradesWritesToReadOnlyServing) {
  const std::string dir = FreshWalDir("cfsf_serve_rate_fsync_fault");
  wal::WriteAheadLog log(dir);
  ServingOptions options = SmallStack();
  options.rating_log = &log;
  ServingStack stack(Models(), options);
  ASSERT_EQ(stack.ServeSync(Request::Rate(1, 1, 4.0F)).code, StatusCode::kOk);
  {
    ScopedFailPoint fp("wal.fsync", "once");
    EXPECT_EQ(stack.ServeSync(Request::Rate(1, 2, 4.0F)).code,
              StatusCode::kUnavailable);
  }
  // The log fail-stopped: writes keep refusing, reads keep serving.
  EXPECT_FALSE(log.available());
  EXPECT_EQ(stack.ServeSync(Request::Rate(1, 3, 4.0F)).code,
            StatusCode::kUnavailable);
  EXPECT_EQ(stack.ServeSync(Request::Predict(0, 0)).code, StatusCode::kOk);
  // Rate refusals never score the breaker: still closed at full fusion.
  EXPECT_EQ(stack.breaker().state(), BreakerState::kClosed);
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, DeltaFolderFoldsAckedRatingsIntoANewGeneration) {
  const std::string dir = FreshWalDir("cfsf_serve_delta_fold");
  wal::WriteAheadLog log(dir);
  ModelGeneration models;
  serve::DeltaFolder folder(log, models, FreshModel());
  EXPECT_EQ(folder.PublishNow(), 1u);

  ServingOptions options = SmallStack();
  options.rating_log = &log;
  ServingStack stack(models, options);
  ASSERT_EQ(stack.ServeSync(Request::Rate(2, 5, 5.0F)).code, StatusCode::kOk);
  // One in-range record folds and publishes; an out-of-range user is
  // durable but skipped (enrolment is AddUser's job).
  ASSERT_EQ(stack.ServeSync(Request::Rate(100000, 5, 5.0F)).code,
            StatusCode::kOk);
  EXPECT_EQ(folder.FoldOnce(), 2u);
  EXPECT_EQ(folder.folded_records(), 1u);
  EXPECT_EQ(folder.skipped_records(), 1u);
  EXPECT_EQ(models.ActiveGeneration(), 2u);
  // The fold is visible: the folded pair now predicts near its rating.
  const Response predict = stack.ServeSync(Request::Predict(2, 5));
  ASSERT_EQ(predict.code, StatusCode::kOk);
  EXPECT_TRUE(std::isfinite(predict.predictions[0].value));
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, DeltaFolderBackgroundThreadPublishesWithoutPrompting) {
  const std::string dir = FreshWalDir("cfsf_serve_delta_bg");
  wal::WriteAheadLog log(dir);
  ModelGeneration models;
  serve::DeltaFolderOptions folder_options;
  folder_options.poll_interval = std::chrono::milliseconds(1);
  serve::DeltaFolder folder(log, models, FreshModel(), folder_options);
  folder.PublishNow();
  folder.Start();
  log.Append(matrix::RatingTriple{1, 2, 4.0F, 0}, /*require_durable=*/true);
  for (int i = 0; i < 2000 && folder.folded_records() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  folder.Stop();
  EXPECT_EQ(folder.folded_records(), 1u);
  EXPECT_GE(models.ActiveGeneration(), 2u);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------- hot swap ----

TEST_F(ServeTest, HotSwapReplacesGenerationMidTraffic) {
  ModelGeneration models;
  const std::uint64_t gen1 = models.Install(FreshModel());
  const std::string path = ::testing::TempDir() + "/cfsf_serve_swap.bin";
  core::SaveModel(*FreshModel(), path);

  ServingStack stack(models, SmallStack());
  const auto pinned = models.Active();  // an in-flight request's view
  const std::uint64_t gen2 = models.LoadAndSwap(path);
  EXPECT_GT(gen2, gen1);
  EXPECT_EQ(models.ActiveGeneration(), gen2);
  // The pinned generation is still fully usable until released.
  EXPECT_EQ(pinned->generation(), gen1);
  EXPECT_NO_THROW(pinned->ladder().Predict(0, 0));
  const Response response = stack.ServeSync(Request::Predict(0, 0));
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.generation, gen2);
}

TEST_F(ServeTest, FailedSwapKeepsPreviousGenerationServing) {
  ModelGeneration models;
  const std::uint64_t gen1 = models.Install(FreshModel());
  ServingStack stack(models, SmallStack());
  core::LoadRetryOptions retry;
  retry.max_attempts = 2;
  retry.initial_backoff = std::chrono::milliseconds(1);
  EXPECT_THROW(
      models.LoadAndSwap(::testing::TempDir() + "/cfsf_no_such_bundle.bin",
                         retry),
      util::IoError);
  EXPECT_EQ(models.ActiveGeneration(), gen1);
  EXPECT_EQ(stack.ServeSync(Request::Predict(0, 0)).code, StatusCode::kOk);
}

// ------------------------------------------------------- chaos soak ----

TEST_F(ServeTest, ChaosSoakSurvivesRandomizedFailpointSchedules) {
  ModelGeneration models;
  models.Install(FreshModel());
  const std::string swap_path =
      ::testing::TempDir() + "/cfsf_soak_swap.bin";
  core::SaveModel(*FreshModel(), swap_path);

  ServingOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.degrade_watermark = 48;
  options.breaker = FastBreaker();
  options.breaker.window = 16;
  options.breaker.min_samples = 8;
  ServingStack stack(models, options);

  serve::SoakOptions soak;
  soak.num_clients = 8;
  soak.requests_per_client = 60;
  soak.request_budget = std::chrono::microseconds(500);
  soak.seed = 0xC405C0DE;
  // A slice of ranking traffic exercises the kBreakerOpen refusal path
  // under chaos (rankings cannot be served degraded).
  soak.topn_fraction = 0.1;
  soak.topn_n = 5;
  soak.chaos = {
      {"cfsf.predict", 0.5},
      {"serve.worker", 0.05},
      {"serve.admit", 0.02},
      {"threadpool.task", 0.02},
  };
  core::LoadRetryOptions retry;
  retry.initial_backoff = std::chrono::milliseconds(1);
  soak.mid_traffic = [&] { models.LoadAndSwap(swap_path, retry); };

  const serve::SoakReport report = serve::RunSoak(stack, soak);
  SCOPED_TRACE(report.Summary());

  const auto failures = report.InvariantFailures(options.queue_capacity);
  for (const std::string& failure : failures) ADD_FAILURE() << failure;
  EXPECT_EQ(report.issued, 3u * 8u * 60u);
  EXPECT_GT(report.ok, 0u);
  EXPECT_GE(report.breaker_trips, 1u)
      << "the chaos phase must trip the breaker at least once";
  EXPECT_TRUE(report.mid_traffic_ran);
  EXPECT_FALSE(report.mid_traffic_failed);
  // The swap ran while recovery-phase clients were in flight; whether
  // any of them also *observed* the new generation is timing-dependent,
  // but the stack must serve from it now with nothing broken.
  EXPECT_GE(report.generations_seen, 1u);
  EXPECT_EQ(models.ActiveGeneration(), 2u);
  EXPECT_EQ(stack.ServeSync(Request::Predict(0, 0)).generation, 2u);

  // And the stack must climb all the way back: keep serving calm traffic
  // until the breaker closes at full fusion.
  for (int i = 0; i < 20000 && stack.breaker().level() != 0; ++i) {
    stack.ServeSync(Request::Predict(0, 0));
    if (i % 200 == 199) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(stack.breaker().level(), 0u);
  EXPECT_GE(stack.breaker().recoveries(), 1u);
  EXPECT_LE(stack.MaxDepthSeen(), options.queue_capacity);
}

TEST(SoakReportTest, InvariantFailuresCatchBrokenRuns) {
  serve::SoakReport report;
  report.issued = 10;
  report.ok = 4;
  report.shed = 1;
  report.rejected = 1;
  report.errors = 3;  // tallies short by one
  report.max_depth_seen = 9;
  report.all_finite = false;
  const auto failures = report.InvariantFailures(/*queue_capacity=*/8);
  EXPECT_EQ(failures.size(), 3u);  // depth bound, NaN, tally mismatch
  serve::SoakReport healthy;
  healthy.issued = 4;
  healthy.ok = 4;
  healthy.max_depth_seen = 2;
  EXPECT_TRUE(healthy.InvariantFailures(8).empty());
}

}  // namespace
}  // namespace cfsf
