// Tests for the resilient serving layer: circuit-breaker state machine,
// admission control (shedding, watermark degrade/reject), deadline
// propagation, hot model swap, dispatch-fault survival — and the chaos
// soak that drives all of it at once under randomized failpoint
// schedules (ctest labels: fault + stress).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "data/synthetic.hpp"
#include "obs/failpoint.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/model_generation.hpp"
#include "serve/serving_stack.hpp"
#include "serve/soak.hpp"
#include "util/error.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using robust::PredictionRung;
using obs::ScopedFailPoint;
using serve::BreakerPlan;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::ModelGeneration;
using serve::ServeResult;
using serve::ServeStatus;
using serve::ServingOptions;
using serve::ServingStack;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  /// One fitted model shared by every test (fitting is the slow part).
  static std::unique_ptr<core::CfsfModel> FreshModel() {
    data::SyntheticConfig dconfig;
    dconfig.num_users = 60;
    dconfig.num_items = 80;
    dconfig.min_ratings_per_user = 15;
    core::CfsfConfig config;
    config.num_clusters = 5;
    config.top_m_items = 15;
    config.top_k_users = 8;
    auto model = std::make_unique<core::CfsfModel>(config);
    model->Fit(data::GenerateSynthetic(dconfig));
    return model;
  }

  static ModelGeneration& Models() {
    static ModelGeneration* models = [] {
      auto* m = new ModelGeneration();  // cfsf-lint: allow(naked-new)
      m->Install(FreshModel());
      return m;
    }();
    return *models;
  }
};

// ------------------------------------------------- circuit breaker ----

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_threshold = 0.5;
  options.cooldown = std::chrono::milliseconds(1);
  options.probe_count = 2;
  options.probe_success_threshold = 1.0;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAtFullFusion) {
  CircuitBreaker breaker(FastBreaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.level(), 0u);
  const BreakerPlan plan = breaker.Admit();
  EXPECT_EQ(plan.level, 0u);
  EXPECT_FALSE(plan.probe);
}

TEST(CircuitBreakerTest, TripsOnBadWindowAndStepsDownOneTier) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) {
    breaker.Record(breaker.Admit(), 0, /*bad=*/true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndRecoversOnGoodProbes) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  ASSERT_EQ(breaker.level(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  // First Admit past the cooldown half-opens and issues a probe one
  // tier up; good probes recover the tier and close the breaker.
  for (int i = 0; i < 2; ++i) {
    const BreakerPlan plan = breaker.Admit();
    ASSERT_TRUE(plan.probe);
    ASSERT_EQ(plan.level, 0u);
    breaker.Record(plan, plan.level, /*bad=*/false);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.recoveries(), 1u);
}

TEST(CircuitBreakerTest, FailedProbesReopenAtCurrentLevel) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  for (int i = 0; i < 2; ++i) {
    const BreakerPlan plan = breaker.Admit();
    ASSERT_TRUE(plan.probe);
    breaker.Record(plan, plan.level, /*bad=*/true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.recoveries(), 0u);
}

TEST(CircuitBreakerTest, StaleProbeOutcomeIsIgnored) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.Record(breaker.Admit(), 0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const BreakerPlan p1 = breaker.Admit();
  const BreakerPlan p2 = breaker.Admit();
  ASSERT_TRUE(p1.probe && p2.probe);
  breaker.Record(p1, p1.level, /*bad=*/true);
  breaker.Record(p2, p2.level, /*bad=*/true);  // episode fails; re-open
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const BreakerPlan q1 = breaker.Admit();  // fresh half-open episode
  ASSERT_TRUE(q1.probe);
  // Replaying the dead episode's probes must not leak into the new one.
  breaker.Record(p1, p1.level, /*bad=*/false);
  breaker.Record(p2, p2.level, /*bad=*/false);
  EXPECT_EQ(breaker.recoveries(), 0u);
  EXPECT_EQ(breaker.level(), 1u);
  // The live episode still concludes on its own probes.
  const BreakerPlan q2 = breaker.Admit();
  ASSERT_TRUE(q2.probe);
  breaker.Record(q1, q1.level, /*bad=*/false);
  breaker.Record(q2, q2.level, /*bad=*/false);
  EXPECT_EQ(breaker.recoveries(), 1u);
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, RepeatedTripsBottomOutAtGlobalMean) {
  CircuitBreakerOptions options = FastBreaker();
  options.cooldown = std::chrono::hours(1);  // never half-open here
  CircuitBreaker breaker(options);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      const BreakerPlan plan = breaker.Admit();
      breaker.Record(plan, plan.level, true);
    }
  }
  EXPECT_EQ(breaker.level(), options.max_level);
  EXPECT_LE(breaker.trips(), options.max_level);
}

TEST(CircuitBreakerTest, RejectsNonsenseOptions) {
  CircuitBreakerOptions options;
  options.window = 0;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.min_samples = options.window + 1;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.trip_threshold = 0.0;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
  options = CircuitBreakerOptions{};
  options.max_level = 4;
  EXPECT_THROW(CircuitBreaker{options}, util::ConfigError);
}

// ---------------------------------------------------- serving stack ----

ServingOptions SmallStack() {
  ServingOptions options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  options.degrade_watermark = 24;
  options.breaker = FastBreaker();
  return options;
}

TEST_F(ServeTest, ServesFullFusionWhenHealthy) {
  ServingStack stack(Models(), SmallStack());
  const ServeResult result = stack.ServeSync(0, 0);
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_EQ(result.rung, PredictionRung::kFull);
  EXPECT_GE(result.value, 1.0);
  EXPECT_LE(result.value, 5.0);
  EXPECT_GT(result.generation, 0u);
  EXPECT_FALSE(result.deadline_overrun);
}

TEST_F(ServeTest, ExpiredDeadlineDegradesInsteadOfBlocking) {
  ServingStack stack(Models(), SmallStack());
  const ServeResult result = stack.ServeSync(
      1, 1, robust::Deadline::After(std::chrono::microseconds(0)));
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_TRUE(result.deadline_overrun);
  EXPECT_GE(result.rung, PredictionRung::kUserMean);
  EXPECT_TRUE(std::isfinite(result.value));
}

TEST_F(ServeTest, AdmissionFailpointShedsInsteadOfThrowing) {
  ServingStack stack(Models(), SmallStack());
  ScopedFailPoint guard("serve.admit", "always");
  const ServeResult result = stack.ServeSync(0, 0);
  EXPECT_EQ(result.status, ServeStatus::kShed);
}

TEST_F(ServeTest, WatermarkDegradesThenCapacitySheds) {
  // One worker, pinned down by a big batch: singles pile up behind it
  // and walk the admission ladder deterministically.
  ServingOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.degrade_watermark = 1;
  options.watermark_level = 2;
  options.breaker = FastBreaker();
  ServingStack stack(Models(), options);

  std::vector<std::pair<matrix::UserId, matrix::ItemId>> big(
      100000, {0, 0});
  auto batch_future = stack.SubmitBatch(std::move(big), robust::Deadline());
  // depth 1 >= watermark: everything below is admitted degraded.
  auto degraded_a = stack.Submit(2, 2);  // depth 2
  auto degraded_b = stack.Submit(3, 3);  // depth 3
  auto degraded_c = stack.Submit(4, 4);  // depth 4 == capacity
  const ServeResult shed = stack.ServeSync(5, 5);
  EXPECT_EQ(shed.status, ServeStatus::kShed);

  const ServeResult a = ServingStack::Await(degraded_a);
  const ServeResult b = ServingStack::Await(degraded_b);
  const ServeResult c = ServingStack::Await(degraded_c);
  for (const ServeResult& r : {a, b, c}) {
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_GE(r.tier, 2u);
    EXPECT_GE(r.rung, PredictionRung::kUserMean);
  }
  EXPECT_EQ(batch_future.get().size(), 100000u);
  EXPECT_LE(stack.MaxDepthSeen(), options.queue_capacity);
}

TEST_F(ServeTest, WatermarkRejectPolicyRefuses) {
  ServingOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.degrade_watermark = 1;
  options.watermark_policy = serve::WatermarkPolicy::kReject;
  options.breaker = FastBreaker();
  ServingStack stack(Models(), options);

  std::vector<std::pair<matrix::UserId, matrix::ItemId>> big(
      100000, {0, 0});
  auto batch_future = stack.SubmitBatch(std::move(big), robust::Deadline());
  const ServeResult rejected = stack.ServeSync(1, 1);
  EXPECT_EQ(rejected.status, ServeStatus::kRejected);
  batch_future.get();
}

TEST_F(ServeTest, WorkerFaultYieldsErrorResultAndStackSurvives) {
  ServingStack stack(Models(), SmallStack());
  {
    ScopedFailPoint guard("serve.worker", "always");
    const ServeResult result = stack.ServeSync(0, 0);
    EXPECT_EQ(result.status, ServeStatus::kError);
    EXPECT_FALSE(result.error.empty());
  }
  EXPECT_EQ(stack.ServeSync(0, 0).status, ServeStatus::kOk);
  EXPECT_EQ(stack.QueueDepth(), 0u);
}

TEST_F(ServeTest, DispatchFaultBreaksPromiseNotTheClient) {
  ServingStack stack(Models(), SmallStack());
  {
    // threadpool.task fires before the task closure runs: the promise
    // inside the destroyed closure breaks.  The client must still get a
    // (kError) answer and the queue slot must be released.
    ScopedFailPoint guard("threadpool.task", "always");
    const ServeResult result = stack.ServeSync(0, 0);
    EXPECT_EQ(result.status, ServeStatus::kError);
    EXPECT_NE(result.error.find("dropped at dispatch"), std::string::npos);
  }
  stack.Drain();
  EXPECT_EQ(stack.QueueDepth(), 0u);
  // Drained stacks shed; a fresh stack over the same models still works.
  EXPECT_EQ(stack.ServeSync(0, 0).status, ServeStatus::kShed);
}

TEST_F(ServeTest, BreakerTripsAndRecoversThroughTheStack) {
  ServingOptions options = SmallStack();
  options.num_workers = 1;  // keep outcome ordering deterministic
  ServingStack stack(Models(), options);
  {
    // Full fusion faults on every request: planned-rung misses score bad,
    // the breaker steps the stack down to the SIR′ tier.
    ScopedFailPoint guard("cfsf.predict", "always");
    for (int i = 0; i < 16 && stack.breaker().level() == 0; ++i) {
      stack.ServeSync(0, 0);
    }
    EXPECT_GE(stack.breaker().trips(), 1u);
    EXPECT_EQ(stack.breaker().level(), 1u);
  }
  // Fault cleared: half-open probes climb back to full fusion.
  for (int i = 0; i < 5000 && stack.breaker().level() != 0; ++i) {
    stack.ServeSync(0, 0);
    if (i % 100 == 99) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(stack.breaker().level(), 0u);
  EXPECT_EQ(stack.breaker().state(), BreakerState::kClosed);
  EXPECT_GE(stack.breaker().recoveries(), 1u);
}

// --------------------------------------------------------- hot swap ----

TEST_F(ServeTest, HotSwapReplacesGenerationMidTraffic) {
  ModelGeneration models;
  const std::uint64_t gen1 = models.Install(FreshModel());
  const std::string path = ::testing::TempDir() + "/cfsf_serve_swap.bin";
  core::SaveModel(*FreshModel(), path);

  ServingStack stack(models, SmallStack());
  const auto pinned = models.Active();  // an in-flight request's view
  const std::uint64_t gen2 = models.LoadAndSwap(path);
  EXPECT_GT(gen2, gen1);
  EXPECT_EQ(models.ActiveGeneration(), gen2);
  // The pinned generation is still fully usable until released.
  EXPECT_EQ(pinned->generation(), gen1);
  EXPECT_NO_THROW(pinned->ladder().Predict(0, 0));
  const ServeResult result = stack.ServeSync(0, 0);
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_EQ(result.generation, gen2);
}

TEST_F(ServeTest, FailedSwapKeepsPreviousGenerationServing) {
  ModelGeneration models;
  const std::uint64_t gen1 = models.Install(FreshModel());
  ServingStack stack(models, SmallStack());
  core::LoadRetryOptions retry;
  retry.max_attempts = 2;
  retry.initial_backoff = std::chrono::milliseconds(1);
  EXPECT_THROW(
      models.LoadAndSwap(::testing::TempDir() + "/cfsf_no_such_bundle.bin",
                         retry),
      util::IoError);
  EXPECT_EQ(models.ActiveGeneration(), gen1);
  EXPECT_EQ(stack.ServeSync(0, 0).status, ServeStatus::kOk);
}

// ------------------------------------------------------- chaos soak ----

TEST_F(ServeTest, ChaosSoakSurvivesRandomizedFailpointSchedules) {
  ModelGeneration models;
  models.Install(FreshModel());
  const std::string swap_path =
      ::testing::TempDir() + "/cfsf_soak_swap.bin";
  core::SaveModel(*FreshModel(), swap_path);

  ServingOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.degrade_watermark = 48;
  options.breaker = FastBreaker();
  options.breaker.window = 16;
  options.breaker.min_samples = 8;
  ServingStack stack(models, options);

  serve::SoakOptions soak;
  soak.num_clients = 8;
  soak.requests_per_client = 60;
  soak.request_budget = std::chrono::microseconds(500);
  soak.seed = 0xC405C0DE;
  soak.chaos = {
      {"cfsf.predict", 0.5},
      {"serve.worker", 0.05},
      {"serve.admit", 0.02},
      {"threadpool.task", 0.02},
  };
  core::LoadRetryOptions retry;
  retry.initial_backoff = std::chrono::milliseconds(1);
  soak.mid_traffic = [&] { models.LoadAndSwap(swap_path, retry); };

  const serve::SoakReport report = serve::RunSoak(stack, soak);
  SCOPED_TRACE(report.Summary());

  const auto failures = report.InvariantFailures(options.queue_capacity);
  for (const std::string& failure : failures) ADD_FAILURE() << failure;
  EXPECT_EQ(report.issued, 3u * 8u * 60u);
  EXPECT_GT(report.ok, 0u);
  EXPECT_GE(report.breaker_trips, 1u)
      << "the chaos phase must trip the breaker at least once";
  EXPECT_TRUE(report.mid_traffic_ran);
  EXPECT_FALSE(report.mid_traffic_failed);
  // The swap ran while recovery-phase clients were in flight; whether
  // any of them also *observed* the new generation is timing-dependent,
  // but the stack must serve from it now with nothing broken.
  EXPECT_GE(report.generations_seen, 1u);
  EXPECT_EQ(models.ActiveGeneration(), 2u);
  EXPECT_EQ(stack.ServeSync(0, 0).generation, 2u);

  // And the stack must climb all the way back: keep serving calm traffic
  // until the breaker closes at full fusion.
  for (int i = 0; i < 20000 && stack.breaker().level() != 0; ++i) {
    stack.ServeSync(0, 0);
    if (i % 200 == 199) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(stack.breaker().level(), 0u);
  EXPECT_GE(stack.breaker().recoveries(), 1u);
  EXPECT_LE(stack.MaxDepthSeen(), options.queue_capacity);
}

TEST(SoakReportTest, InvariantFailuresCatchBrokenRuns) {
  serve::SoakReport report;
  report.issued = 10;
  report.ok = 4;
  report.shed = 1;
  report.rejected = 1;
  report.errors = 3;  // tallies short by one
  report.max_depth_seen = 9;
  report.all_finite = false;
  const auto failures = report.InvariantFailures(/*queue_capacity=*/8);
  EXPECT_EQ(failures.size(), 3u);  // depth bound, NaN, tally mismatch
  serve::SoakReport healthy;
  healthy.issued = 4;
  healthy.ok = 4;
  healthy.max_depth_seen = 2;
  EXPECT_TRUE(healthy.InvariantFailures(8).empty());
}

}  // namespace
}  // namespace cfsf
