// Integration tests: the full pipeline (dataset → protocol → offline →
// online → metrics) exactly as the bench harness runs it, plus the
// paper's qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/scbpcc.hpp"
#include "baselines/sir.hpp"
#include "baselines/sur.hpp"
#include "core/cfsf.hpp"
#include "util/stopwatch.hpp"

namespace cfsf {
namespace {

// One shared mid-size world for the whole file (expensive to build).
class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig config;
    config.num_users = 200;
    config.num_items = 300;
    config.min_ratings_per_user = 25;
    config.log_mean = 3.6;
    base_ = std::make_unique<matrix::RatingMatrix>(
        data::GenerateSynthetic(config));
  }
  static void TearDownTestSuite() { base_.reset(); }

  static data::EvalSplit Split(std::size_t train_users, std::size_t given) {
    data::ProtocolConfig pconfig;
    pconfig.num_train_users = train_users;
    pconfig.num_test_users = 60;
    pconfig.given_n = given;
    return data::MakeGivenNSplit(*base_, pconfig);
  }

  static core::CfsfConfig ModelConfig() {
    core::CfsfConfig config;
    config.num_clusters = 12;
    config.top_m_items = 40;
    config.top_k_users = 15;
    return config;
  }

  static std::unique_ptr<matrix::RatingMatrix> base_;
};

std::unique_ptr<matrix::RatingMatrix> IntegrationFixture::base_;

TEST_F(IntegrationFixture, EndToEndPipelineProducesSaneMae) {
  const auto split = Split(140, 10);
  core::CfsfModel model(ModelConfig());
  const auto result = eval::Evaluate(model, split);
  EXPECT_GT(result.num_predictions, 500u);
  // On 1-5 star data a working CF pipeline lands well under the ~1.0 MAE
  // of naive predictors and above the noise floor.
  EXPECT_LT(result.mae, 0.95);
  EXPECT_GT(result.mae, 0.3);
  EXPECT_GE(result.rmse, result.mae);
}

TEST_F(IntegrationFixture, CfsfBeatsTraditionalBaselines) {
  // Table II's claim at reduced scale.
  const auto split = Split(140, 10);
  core::CfsfModel cfsf(ModelConfig());
  baselines::SurPredictor sur;
  baselines::SirPredictor sir;
  const double mae_cfsf = eval::Evaluate(cfsf, split).mae;
  const double mae_sur = eval::Evaluate(sur, split).mae;
  const double mae_sir = eval::Evaluate(sir, split).mae;
  EXPECT_LT(mae_cfsf, mae_sur);
  EXPECT_LT(mae_cfsf, mae_sir);
}

TEST_F(IntegrationFixture, MoreTrainingUsersHelp) {
  // Tables II/III: MAE falls as the training set grows.
  core::CfsfModel small(ModelConfig());
  core::CfsfModel large(ModelConfig());
  const double mae_small = eval::Evaluate(small, Split(60, 10)).mae;
  const double mae_large = eval::Evaluate(large, Split(140, 10)).mae;
  EXPECT_LT(mae_large, mae_small);
}

TEST_F(IntegrationFixture, MoreGivenRatingsHelp) {
  // Tables II/III: MAE falls from Given5 to Given20.
  core::CfsfModel a(ModelConfig());
  core::CfsfModel b(ModelConfig());
  const double mae_g5 = eval::Evaluate(a, Split(140, 5)).mae;
  const double mae_g20 = eval::Evaluate(b, Split(140, 20)).mae;
  EXPECT_LT(mae_g20, mae_g5);
}

TEST_F(IntegrationFixture, OnlinePhaseScalesLinearlyInTestset) {
  // Fig. 5's linearity claim: doubling the testset should roughly double
  // the online time, and certainly not blow up super-linearly.
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 140;
  pconfig.num_test_users = 60;
  pconfig.given_n = 20;
  pconfig.test_fraction = 0.5;
  const auto half = data::MakeGivenNSplit(*base_, pconfig);
  pconfig.test_fraction = 1.0;
  const auto full = data::MakeGivenNSplit(*base_, pconfig);
  EXPECT_GT(full.test.size(), half.test.size() * 3 / 2);

  core::CfsfModel model(ModelConfig());
  model.Fit(full.train);
  // Warm up (exclude one-time costs), then time both testset sizes with
  // cleared caches.
  (void)eval::EvaluateFitted(model, full.test);
  model.ClearCache();
  util::Stopwatch w1;
  (void)eval::EvaluateFitted(model, half.test);
  const double t_half = w1.ElapsedSeconds();
  model.ClearCache();
  util::Stopwatch w2;
  (void)eval::EvaluateFitted(model, full.test);
  const double t_full = w2.ElapsedSeconds();
  // Sub-quadratic growth: full/half < 2 * (size ratio).
  const double size_ratio = static_cast<double>(full.test.size()) /
                            static_cast<double>(half.test.size());
  EXPECT_LT(t_full, t_half * size_ratio * 3.0 + 0.05);
}

TEST_F(IntegrationFixture, CacheSpeedsUpRepeatedUsers) {
  const auto split = Split(140, 20);
  core::CfsfModel model(ModelConfig());
  model.Fit(split.train);
  const auto user = split.active_users[0];
  util::Stopwatch cold;
  model.Predict(user, split.test[0].item);
  const double t_cold = cold.ElapsedSeconds();
  util::Stopwatch warm;
  for (int k = 0; k < 10; ++k) model.Predict(user, split.test[0].item);
  const double t_warm = warm.ElapsedSeconds() / 10.0;
  // The cached path skips the Eq. 10 selection entirely; it must not be
  // slower (tolerance for timer noise on tiny durations).
  EXPECT_LT(t_warm, t_cold + 0.001);
}

TEST_F(IntegrationFixture, SmoothingSelectionBeatsRandomSelection) {
  // The iCluster+Eq.10 selection should beat predicting from an equally
  // sized but arbitrary set of users (here: simulated by SUR' with pool
  // restricted to a single worst cluster via tiny candidate pool and one
  // cluster — approximated by comparing against plain SIR).
  const auto split = Split(140, 5);
  core::CfsfModel cfsf(ModelConfig());
  baselines::ScbpccConfig sconfig;
  sconfig.num_clusters = 12;
  sconfig.top_k_users = 15;
  baselines::ScbpccPredictor scbpcc(sconfig);
  const double mae_cfsf = eval::Evaluate(cfsf, split).mae;
  const double mae_scbpcc = eval::Evaluate(scbpcc, split).mae;
  // Fusion should not lose to the pure cluster-smoothing approach here.
  EXPECT_LE(mae_cfsf, mae_scbpcc + 0.01);
}

TEST_F(IntegrationFixture, RealUDataFileRoundTrip) {
  // Save the synthetic base in u.data format, reload through the loader
  // path the real MovieLens would take, and run the pipeline on it.
  const std::string path = ::testing::TempDir() + "/cfsf_integration_udata.tsv";
  data::SaveUData(*base_, path);
  data::MovieLensOptions options;
  options.min_ratings_per_user = 25;
  const auto reloaded = data::LoadUData(path, options);
  EXPECT_EQ(reloaded.matrix.num_ratings(), base_->num_ratings());

  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 100;
  pconfig.num_test_users = 40;
  pconfig.given_n = 10;
  const auto split = data::MakeGivenNSplit(reloaded.matrix, pconfig);
  core::CfsfModel model(ModelConfig());
  const auto result = eval::Evaluate(model, split);
  EXPECT_LT(result.mae, 1.0);
}

TEST_F(IntegrationFixture, EstablishedUsersEasierThanColdOnes) {
  // All-But-One users have near-full histories; CFSF should predict them
  // better than Given5 near-cold users on the same world.
  data::AllButNConfig aconfig;
  aconfig.num_train_users = 140;
  aconfig.num_test_users = 60;
  const auto established = data::MakeAllButNSplit(*base_, aconfig);
  const auto cold = Split(140, 5);
  core::CfsfModel a(ModelConfig());
  core::CfsfModel b(ModelConfig());
  const double mae_established = eval::Evaluate(a, established).mae;
  const double mae_cold = eval::Evaluate(b, cold).mae;
  EXPECT_LT(mae_established, mae_cold);
}

TEST_F(IntegrationFixture, DeterministicAcrossRuns) {
  const auto split = Split(100, 10);
  core::CfsfModel a(ModelConfig());
  core::CfsfModel b(ModelConfig());
  const auto ra = eval::Evaluate(a, split);
  const auto rb = eval::Evaluate(b, split);
  EXPECT_DOUBLE_EQ(ra.mae, rb.mae);
  EXPECT_DOUBLE_EQ(ra.rmse, rb.rmse);
}

}  // namespace
}  // namespace cfsf
