// Stress tests (ctest label: stress) — concurrency hammers designed to
// give the sanitizer presets, TSan in particular, real contention to
// bite on: ThreadPool Submit/Wait cycles under concurrent producers,
// parallel_for static/dynamic chunking, and concurrent online-phase
// prediction against one shared CfsfModel (the serving scenario the
// ROADMAP is heading toward).
//
// The tests are sized to finish in seconds uninstrumented and tens of
// seconds under TSan; they assert full effect counts so a lost task,
// double-claimed chunk or dropped wakeup fails loudly even without a
// sanitizer attached.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/cfsf_model.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "obs/failpoint.hpp"
#include "robust/fallback.hpp"
#include "util/error.hpp"
#include "wal/log.hpp"

namespace cfsf {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmitters) {
  par::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, SubmitWaitChurn) {
  par::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolStress, ExceptionStormLeavesPoolUsable) {
  par::ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) {
      if (i % 3 == 0) {
        pool.Submit([] { throw util::ConfigError("storm"); });
      } else {
        pool.Submit([&completed] { completed.fetch_add(1); });
      }
    }
    EXPECT_THROW(pool.Wait(), util::ConfigError);
  }
  // Every non-throwing task still ran, and the pool is reusable after
  // the last rethrow cleared the stored exception.
  EXPECT_EQ(completed.load(), 50 * 6);
  pool.Submit([&completed] { completed.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(completed.load(), 50 * 6 + 1);
}

TEST(ThreadPoolStress, ConstructionDestructionChurn) {
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    par::ThreadPool pool(2);
    for (int i = 0; i < 25; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must drain the queue without losing or
    // double-running tasks.
  }
  EXPECT_EQ(counter.load(), 50 * 25);
}

TEST(ParallelForStress, StaticChunkingVisitsEachIndexOnce) {
  par::ThreadPool pool(4);
  par::ForOptions options;
  options.pool = &pool;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> visits(10007);
    par::ParallelFor(
        0, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); },
        options);
    for (const auto& v : visits) ASSERT_EQ(v.load(), 1);
  }
}

TEST(ParallelForStress, DynamicChunkingVisitsEachIndexOnce) {
  par::ThreadPool pool(4);
  par::ForOptions options;
  options.pool = &pool;
  options.schedule = par::Schedule::kDynamic;
  options.grain = 7;  // tiny grain: maximum cursor contention
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> visits(4999);
    par::ParallelFor(
        0, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); },
        options);
    for (const auto& v : visits) ASSERT_EQ(v.load(), 1);
  }
}

TEST(ParallelForStress, ConcurrentLoopsOnTheSharedPool) {
  // Two threads each drive their own parallel_for on the *shared* pool —
  // the overlap every offline phase step creates when benches run
  // back-to-back model builds.
  std::atomic<long> sum_a{0};
  std::atomic<long> sum_b{0};
  std::thread a([&sum_a] {
    for (int r = 0; r < 10; ++r) {
      par::ParallelFor(0, 2000, [&sum_a](std::size_t i) {
        sum_a.fetch_add(static_cast<long>(i));
      });
    }
  });
  std::thread b([&sum_b] {
    for (int r = 0; r < 10; ++r) {
      par::ParallelFor(0, 2000, [&sum_b](std::size_t i) {
        sum_b.fetch_add(static_cast<long>(i));
      });
    }
  });
  a.join();
  b.join();
  const long expected = 10L * (2000L * 1999L / 2);
  EXPECT_EQ(sum_a.load(), expected);
  EXPECT_EQ(sum_b.load(), expected);
}

TEST(ParallelForStress, ReduceMatchesSerialUnderContention) {
  par::ThreadPool pool(4);
  par::ForOptions options;
  options.pool = &pool;
  for (int round = 0; round < 10; ++round) {
    const double parallel = par::ParallelReduce<double>(
        0, 20000, [] { return 0.0; },
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + i); },
        [](double& total, double& partial) { total += partial; }, 0.0,
        options);
    par::ForOptions serial;
    serial.serial = true;
    const double reference = par::ParallelReduce<double>(
        0, 20000, [] { return 0.0; },
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + i); },
        [](double& total, double& partial) { total += partial; }, 0.0,
        serial);
    ASSERT_NEAR(parallel, reference, 1e-9);
  }
}

// --- Concurrent online phase against one shared model -------------------

class ModelStress : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig data_config;
    data_config.num_users = 120;
    data_config.num_items = 150;
    data_config.min_ratings_per_user = 15;
    data_config.max_ratings_per_user = 60;
    data_config.log_mean = 3.2;

    core::CfsfConfig config;
    config.num_clusters = 8;
    config.top_m_items = 25;
    config.top_k_users = 10;
    config.use_cache = true;
    model_ = std::make_unique<core::CfsfModel>(config);
    model_->Fit(data::GenerateSynthetic(data_config));
  }
  static void TearDownTestSuite() { model_.reset(); }

  static std::unique_ptr<core::CfsfModel> model_;
};

std::unique_ptr<core::CfsfModel> ModelStress::model_;

TEST_F(ModelStress, ConcurrentPredictionsShareTheCache) {
  constexpr int kThreads = 4;
  std::atomic<int> non_finite{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // All threads sweep the same users so the per-user top-K cache sees
    // concurrent misses, fills and hits on identical slots.
    threads.emplace_back([&non_finite] {
      for (matrix::UserId u = 0; u < 40; ++u) {
        for (matrix::ItemId i = 0; i < 30; ++i) {
          if (!std::isfinite(model_->Predict(u, i))) non_finite.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(non_finite.load(), 0);
  EXPECT_GT(model_->CacheSize(), 0u);
}

TEST_F(ModelStress, ConcurrentBatchPredictionAndCacheClearing) {
  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
  for (matrix::UserId u = 0; u < 60; ++u) {
    for (matrix::ItemId i = 0; i < 10; ++i) queries.emplace_back(u, i);
  }
  std::atomic<bool> stop{false};
  // Antagonist thread: keeps invalidating the cache while two batch
  // predictions (each internally parallel on the shared pool) run.
  std::thread antagonist([&stop] {
    while (!stop.load()) {
      model_->ClearCache();
      std::this_thread::yield();
    }
  });
  std::thread batch_a([&queries] {
    for (int r = 0; r < 3; ++r) {
      const auto out = model_->PredictBatch(queries);
      ASSERT_EQ(out.size(), queries.size());
      for (const double v : out) ASSERT_TRUE(std::isfinite(v));
    }
  });
  std::thread batch_b([&queries] {
    for (int r = 0; r < 3; ++r) {
      const auto out = model_->PredictBatch(queries);
      ASSERT_EQ(out.size(), queries.size());
      for (const double v : out) ASSERT_TRUE(std::isfinite(v));
    }
  });
  batch_a.join();
  batch_b.join();
  stop.store(true);
  antagonist.join();
}

TEST_F(ModelStress, ConcurrentTopNAndSelection) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (matrix::UserId u = static_cast<matrix::UserId>(t); u < 48;
           u += 4) {
        const auto selected = model_->SelectTopKUsers(u);
        ASSERT_LE(selected.size(), model_->config().top_k_users);
        const auto recs = model_->RecommendTopN(u, 5);
        ASSERT_LE(recs.size(), 5u);
        for (const auto& r : recs) ASSERT_TRUE(std::isfinite(r.score));
      }
    });
  }
  for (auto& t : threads) t.join();
}

// Many threads hammer one shared FallbackPredictor while prob:
// failpoints randomly blow up the full and SIR′ rungs underneath them.
// Every call must still produce a finite in-range value (the ladder is
// total), and the registry's counter updates must stay race-free.
TEST_F(ModelStress, FallbackLadderIsTotalUnderConcurrentFaults) {
  auto& registry = obs::FailPointRegistry::Global();
  registry.DisarmAll();
  registry.SetSeed(1234);
  obs::ScopedFailPoint full("cfsf.predict", "prob:0.3");
  obs::ScopedFailPoint sir("cfsf.predict.sir", "prob:0.3");
  robust::FallbackPredictor ladder(*model_);

  constexpr int kThreads = 4;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ladder, &bad, t] {
      for (int round = 0; round < 20; ++round) {
        for (matrix::UserId u = static_cast<matrix::UserId>(t); u < 60;
             u += kThreads) {
          const double v = ladder.Predict(u, (u + round) % 100);
          if (!std::isfinite(v) || v < 1.0 || v > 5.0) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(registry.TripCount("cfsf.predict"), 0u);
  registry.DisarmAll();
}

// Hammer one shared Counter/Gauge/Histogram from many threads at once.
// Sharded counters and relaxed-atomic histograms must come out exact
// (every increment lands in some shard) and TSan must stay silent.
TEST(MetricsStress, ConcurrentRecordingIsExactAndRaceFree) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("stress.count");
  obs::Gauge& gauge = registry.GetGauge("stress.gauge");
  obs::Histogram& histogram =
      registry.GetHistogram("stress.latency_us", obs::LatencyBucketsUs());

  constexpr int kThreads = 8;
  constexpr int kOpsEach = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge, &histogram, t] {
      for (int i = 0; i < kOpsEach; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        // Spread records across the whole bucket ladder.
        histogram.Record(static_cast<double>((t * kOpsEach + i) % 2000000));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if constexpr (obs::MetricsEnabled()) {
    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kThreads) * kOpsEach;
    EXPECT_EQ(counter.Value(), kTotal);
    EXPECT_EQ(gauge.Value(), static_cast<double>(kTotal));
    EXPECT_EQ(histogram.Count(), kTotal);
    std::uint64_t bucket_sum = 0;
    for (const auto c : histogram.BucketCounts()) bucket_sum += c;
    EXPECT_EQ(bucket_sum, kTotal);
  }

  // Snapshotting after writers quiesce must be consistent and valid.
  const std::string snapshot = registry.ToJson();
  EXPECT_NE(snapshot.find("stress.count"), std::string::npos);
}

// Concurrent snapshotting WHILE writers are active: the snapshot is
// weakly consistent by design, but it must not race or crash.
TEST(MetricsStress, SnapshotDuringConcurrentWrites) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("live.count");
  obs::Histogram& histogram =
      registry.GetHistogram("live.size", obs::SizeBuckets());

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&counter, &histogram, &stop] {
      while (!stop.load()) {
        counter.Increment();
        histogram.Record(42.0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(registry.ToJson().empty());
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
}

// The histogram merge path under full contention: writers re-resolve
// their histogram by name on every record (hammering the mutex-guarded
// registration map, not just the lock-free Record fast path) while
// snapshot threads run ToJson/Percentile/BucketCounts against the live
// registry.  Under the tsan preset this keeps the thread-safety
// annotations' claims honest at runtime; the exact-count accounting
// afterwards proves no update was lost in the merge.
TEST(MetricsStress, HistogramMergeHammer) {
  obs::MetricsRegistry registry;
  constexpr int kWriters = 6;
  constexpr int kSnapshotters = 2;
  constexpr int kOpsEach = 8000;
  constexpr int kHistograms = 5;

  const auto name_of = [](int h) { return "merge.h" + std::to_string(h); };

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, &name_of, t] {
      for (int i = 0; i < kOpsEach; ++i) {
        obs::Histogram& histogram = registry.GetHistogram(
            name_of((t + i) % kHistograms), obs::LatencyBucketsUs());
        histogram.Record(static_cast<double>(i % 500000));
      }
    });
  }
  std::vector<std::thread> snapshotters;
  snapshotters.reserve(kSnapshotters);
  for (int s = 0; s < kSnapshotters; ++s) {
    snapshotters.emplace_back([&registry, &name_of, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_FALSE(registry.ToJson().empty());
        obs::Histogram& histogram =
            registry.GetHistogram(name_of(0), obs::LatencyBucketsUs());
        (void)histogram.Percentile(95.0);
        (void)histogram.BucketCounts();
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& snapshotter : snapshotters) snapshotter.join();

  if constexpr (obs::MetricsEnabled()) {
    std::uint64_t total = 0;
    for (int h = 0; h < kHistograms; ++h) {
      obs::Histogram& histogram =
          registry.GetHistogram(name_of(h), obs::LatencyBucketsUs());
      std::uint64_t bucket_sum = 0;
      for (const auto count : histogram.BucketCounts()) bucket_sum += count;
      EXPECT_EQ(bucket_sum, histogram.Count());
      total += histogram.Count();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kOpsEach);
  }
}

// ------------------------------------------------------------- wal ----
// The WAL's Append/Sync/DrainAcked entry points are the sanctioned
// CFSF_BLOCKING boundary on the rate ack path (lint v4's
// blocking-call-on-hot-path / ack-before-durable contracts).  Hammer
// that boundary from concurrent appenders racing an explicit syncer and
// a drainer: TSan gets real contention on the log's one mutex, the
// run completing at all exercises the acyclic lock order, and the
// replay at the end proves every durably acked record survived.
TEST(WalStress, ConcurrentAppendersSyncerAndDrainerLoseNothing) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::path(::testing::TempDir()) / "cfsf_wal_stress").string();
  fs::remove_all(dir);

  constexpr int kAppenders = 4;
  constexpr int kRecordsEach = 200;
  wal::WalOptions options;
  options.max_segment_bytes = 16 * 1024;  // force rotations mid-hammer
  options.fsync_policy = wal::FsyncPolicy::kEveryN;
  options.fsync_every_n = 16;

  std::atomic<std::uint64_t> durable_acks{0};
  std::atomic<std::size_t> drained{0};
  {
    wal::WriteAheadLog log(dir, options);
    std::atomic<bool> stop{false};
    std::vector<std::thread> appenders;
    appenders.reserve(kAppenders);
    for (int a = 0; a < kAppenders; ++a) {
      appenders.emplace_back([&log, &durable_acks, a] {
        for (int i = 0; i < kRecordsEach; ++i) {
          matrix::RatingTriple record;
          record.user = static_cast<matrix::UserId>(a);
          record.item = static_cast<matrix::ItemId>(i);
          record.value = 3.0F;
          record.timestamp = static_cast<matrix::Timestamp>(i);
          const wal::AppendAck ack = log.Append(record, (i % 7) == 0);
          if (ack.durable) durable_acks.fetch_add(1);
        }
      });
    }
    std::thread syncer([&log, &stop] {
      while (!stop.load(std::memory_order_relaxed)) log.Sync();
    });
    std::thread drainer([&log, &stop, &drained] {
      std::vector<wal::AckedRecord> out;
      while (!stop.load(std::memory_order_relaxed)) {
        drained.fetch_add(log.DrainAcked(&out));
      }
    });
    for (auto& appender : appenders) appender.join();
    stop.store(true, std::memory_order_relaxed);
    syncer.join();
    drainer.join();
    EXPECT_GT(durable_acks.load(), 0U);
    log.Close();  // final barrier: everything appended is now durable
  }

  std::vector<wal::RecoveredRecord> recovered;
  wal::WriteAheadLog reopened(dir, options, &recovered);
  EXPECT_EQ(recovered.size(),
            static_cast<std::size_t>(kAppenders) * kRecordsEach);
  EXPECT_EQ(reopened.durable_lsn(),
            static_cast<std::uint64_t>(kAppenders) * kRecordsEach);
  reopened.Close();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cfsf
