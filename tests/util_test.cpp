// Unit tests for cfsf::util — RNG, strings, tables, args, logging, errors.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <thread>

#include "util/args.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace cfsf::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng root(7);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root1(7);
  Rng root2(7);
  Rng a = root1.Fork(5);
  Rng b = root2.Fork(5);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(14);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ZipfSampler, RanksWithinSupport) {
  Rng rng(15);
  ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 50u);
}

TEST(ZipfSampler, LowRanksDominate) {
  Rng rng(16);
  ZipfSampler zipf(100, 1.0);
  std::size_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // With s=1 the top 10 of 100 ranks carry ~56% of the mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.4);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(17);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.2);
}

TEST(ZipfSampler, RejectsEmptySupport) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ConfigError);
  EXPECT_THROW(ZipfSampler(5, -0.1), ConfigError);
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = Split("a\t\tb", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsRuns) {
  const auto fields = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("AbC", "abc"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_THROW(ParseInt("4.2"), IoError);
  EXPECT_THROW(ParseInt("x"), IoError);
  EXPECT_THROW(ParseInt(""), IoError);
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25"), -0.25);
  EXPECT_THROW(ParseDouble("abc"), IoError);
  EXPECT_THROW(ParseDouble("1.2x"), IoError);
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 3), "2.000");
}

// --------------------------------------------------------------- table ----

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"Method", "MAE"});
  t.AddRow({"CFSF", "0.721"});
  t.AddRow({"SUR", "0.814"});
  const std::string s = t.ToAligned();
  EXPECT_NE(s.find("CFSF"), std::string::npos);
  EXPECT_NE(s.find("0.814"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.AddRow({"only-one"}), ConfigError);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), ConfigError); }

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.AddRow({"a,b"});
  t.AddRow({"say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripPlain) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table t({"h"});
  t.AddRow({"v"});
  const std::string path = ::testing::TempDir() + "/cfsf_table_test.csv";
  t.WriteCsv(path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "h");
}

// ---------------------------------------------------------------- args ----

TEST(Args, EqualsSyntax) {
  const char* argv[] = {"prog", "--k=25"};
  ArgParser args(2, argv);
  EXPECT_EQ(args.GetInt("k", 0), 25);
}

TEST(Args, SpaceSyntax) {
  const char* argv[] = {"prog", "--name", "cfsf"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.GetString("name", ""), "cfsf");
}

TEST(Args, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  ArgParser args(2, argv);
  EXPECT_TRUE(args.GetBool("verbose", false));
}

TEST(Args, DefaultsApply) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing2", 0.5), 0.5);
}

TEST(Args, TypeErrorsThrow) {
  const char* argv[] = {"prog", "--k=abc", "--b=maybe"};
  ArgParser args(3, argv);
  EXPECT_THROW(args.GetInt("k", 0), ConfigError);
  EXPECT_THROW(args.GetBool("b", false), ConfigError);
}

TEST(Args, RejectUnknownCatchesTypos) {
  const char* argv[] = {"prog", "--lamda=0.8"};
  ArgParser args(2, argv);
  args.GetDouble("lambda", 0.8);
  EXPECT_THROW(args.RejectUnknown(), ConfigError);
}

TEST(Args, PositionalCollected) {
  const char* argv[] = {"prog", "file1", "--k=1", "file2"};
  ArgParser args(4, argv);
  args.GetInt("k", 0);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
}

TEST(Args, BooleanLiterals) {
  const char* argv[] = {"prog", "--a=false", "--b=1", "--c=no"};
  ArgParser args(4, argv);
  EXPECT_FALSE(args.GetBool("a", true));
  EXPECT_TRUE(args.GetBool("b", false));
  EXPECT_FALSE(args.GetBool("c", true));
}

// ------------------------------------------------------------- logging ----

TEST(Logging, ParseLogLevelNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_THROW(ParseLogLevel("loud"), ConfigError);
}

TEST(Logging, ThresholdSuppresses) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(detail::LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(detail::LogEnabled(LogLevel::kError));
  SetLogLevel(before);
}

// ----------------------------------------------------------- stopwatch ----

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedMillis(), 15.0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

// ------------------------------------------------------------- errors ----

TEST(Errors, HierarchyIsCatchable) {
  try {
    throw DimensionError("bad shape");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad shape"), std::string::npos);
  }
}

TEST(Errors, RequireMacroThrowsConfigError) {
  const auto boom = [] { CFSF_REQUIRE(1 == 2, "math broke"); };
  EXPECT_THROW(boom(), ConfigError);
}

}  // namespace
}  // namespace cfsf::util
