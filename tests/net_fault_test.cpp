// Fault-injection tests for the HTTP front end (ctest label: fault):
// the net.accept failpoint drops accepted connections before dispatch
// and the net.write failpoint closes a connection before its response
// is written — in both cases the server must keep serving afterwards.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "core/cfsf.hpp"
#include "data/synthetic.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "obs/failpoint.hpp"
#include "serve/model_generation.hpp"
#include "serve/serving_stack.hpp"
#include "util/backoff.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::ScopedFailPoint;

/// One blocking request over a fresh connection; returns the HTTP
/// status, or 0 when the connection died before a complete response.
int OneShot(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return 0;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  int status = 0;
  while (true) {
    const std::size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::size_t at = buffer.find("Content-Length: ");
      const std::size_t length =
          at != std::string::npos && at < header_end
              ? static_cast<std::size_t>(std::atoll(
                    buffer.c_str() + at + std::strlen("Content-Length: ")))
              : 0;
      if (buffer.size() >= header_end + 4 + length) {
        status = std::atoi(buffer.c_str() + 9);
        break;
      }
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // closed before a complete response
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return status;
}

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  static void SetUpTestSuite() {
    data::SyntheticConfig dconfig;
    dconfig.num_users = 30;
    dconfig.num_items = 40;
    dconfig.min_ratings_per_user = 10;
    dconfig.max_ratings_per_user = 20;
    core::CfsfConfig config;
    config.num_clusters = 3;
    config.top_m_items = 10;
    config.top_k_users = 5;
    auto model = std::make_unique<core::CfsfModel>(config);
    model->Fit(data::GenerateSynthetic(dconfig));

    models_ = std::make_unique<serve::ModelGeneration>();
    models_->Install(std::move(model));
    stack_ = std::make_unique<serve::ServingStack>(*models_);
    service_ = std::make_unique<net::ServingService>(*stack_);
    server_ = std::make_unique<net::HttpServer>(*service_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  static void TearDownTestSuite() {
    server_.reset();
    service_.reset();
    stack_.reset();
    models_.reset();
  }

  static constexpr const char kHealthz[] =
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";

  static std::unique_ptr<serve::ModelGeneration> models_;
  static std::unique_ptr<serve::ServingStack> stack_;
  static std::unique_ptr<net::ServingService> service_;
  static std::unique_ptr<net::HttpServer> server_;
};

std::unique_ptr<serve::ModelGeneration> NetFaultTest::models_;
std::unique_ptr<serve::ServingStack> NetFaultTest::stack_;
std::unique_ptr<net::ServingService> NetFaultTest::service_;
std::unique_ptr<net::HttpServer> NetFaultTest::server_;
constexpr const char NetFaultTest::kHealthz[];

/// Keep-alive connections linger until the worker notices the client
/// closed; give the server a bounded moment to drain before asserting.
bool DrainedWithin(const net::HttpServer& server, int budget_ms) {
  for (int i = 0; i < budget_ms; ++i) {
    if (server.ActiveConnections() == 0) return true;
    util::SleepFor(std::chrono::milliseconds(1));
  }
  return server.ActiveConnections() == 0;
}

/// A well-framed predict POST (Content-Length computed, not guessed).
std::string PredictWire() {
  const std::string body = "{\"user\": 0, \"item\": 0}";
  return "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST_F(NetFaultTest, AcceptFaultDropsTheConnectionAndServerKeepsGoing) {
  const auto& registry = FailPointRegistry::Global();
  {
    ScopedFailPoint guard("net.accept", "always");
    // Every accepted connection is dropped before dispatch: no response.
    EXPECT_EQ(OneShot(server_->port(), kHealthz), 0);
    EXPECT_EQ(OneShot(server_->port(), kHealthz), 0);
    // Counters live only while the point is armed — read them here.
    EXPECT_GE(registry.TripCount("net.accept"), 2u);
  }
  // Fault cleared: the accept loop never died, service resumes.
  EXPECT_EQ(OneShot(server_->port(), kHealthz), 200);
  EXPECT_TRUE(DrainedWithin(*server_, 2000));
}

TEST_F(NetFaultTest, WriteFaultClosesBeforeTheResponseAndServerSurvives) {
  {
    ScopedFailPoint guard("net.write", "always");
    // The request is served, but the connection closes before the
    // response bytes go out — the client sees a clean close, never a
    // half-written or hung response.
    EXPECT_EQ(OneShot(server_->port(), PredictWire()), 0);
    EXPECT_GE(FailPointRegistry::Global().TripCount("net.write"), 1u);
  }
  // The worker caught the injected fault; the pool is intact.
  EXPECT_EQ(OneShot(server_->port(), PredictWire()), 200);
  EXPECT_TRUE(DrainedWithin(*server_, 2000));
}

}  // namespace
}  // namespace cfsf
