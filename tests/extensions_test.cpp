// Tests for the extensions beyond the paper's core evaluation: SlopeOne
// and MF baselines, top-N ranking metrics, model persistence, cold-start
// user registration, and the cosine GIS kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/means.hpp"
#include "baselines/mf.hpp"
#include "baselines/slope_one.hpp"
#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "eval/ranking.hpp"
#include "similarity/kernels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <fstream>
#include <map>

namespace cfsf {
namespace {

data::EvalSplit SmallSplit(std::size_t given = 8) {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 150;
  config.min_ratings_per_user = 20;
  config.log_mean = 3.4;
  const auto base = data::GenerateSynthetic(config);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 80;
  pconfig.num_test_users = 40;
  pconfig.given_n = given;
  return data::MakeGivenNSplit(base, pconfig);
}

core::CfsfConfig SmallConfig() {
  core::CfsfConfig config;
  config.num_clusters = 8;
  config.top_m_items = 30;
  config.top_k_users = 10;
  return config;
}

// ------------------------------------------------------------ SlopeOne ----

TEST(SlopeOne, DeviationByHand) {
  //      i0 i1
  // u0    4  2
  // u1    5  1
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 4); b.Add(0, 1, 2);
  b.Add(1, 0, 5); b.Add(1, 1, 1);
  const auto m = b.Build();
  baselines::SlopeOnePredictor s;
  s.Fit(m);
  // dev(i0, i1) = ((4-2)+(5-1))/2 = 3.
  EXPECT_NEAR(s.Deviation(0, 1), 3.0, 1e-6);
  EXPECT_NEAR(s.Deviation(1, 0), -3.0, 1e-6);
  EXPECT_EQ(s.Overlap(0, 1), 2u);
}

TEST(SlopeOne, PredictByHand) {
  matrix::RatingMatrixBuilder b(3, 2);
  b.Add(0, 0, 4); b.Add(0, 1, 2);
  b.Add(1, 0, 5); b.Add(1, 1, 1);
  b.Add(2, 1, 3);  // active user rated only i1
  const auto m = b.Build();
  baselines::SlopeOnePredictor s;
  s.Fit(m);
  // r̂(u2, i0) = dev(i0, i1) + r(u2, i1) = 3 + 3 = 6 (unclamped).
  EXPECT_NEAR(s.Predict(2, 0), 6.0, 1e-6);
}

TEST(SlopeOne, MinOverlapFilters) {
  matrix::RatingMatrixBuilder b(2, 3);
  b.Add(0, 0, 4); b.Add(0, 1, 2);
  b.Add(1, 1, 3); b.Add(1, 2, 5);
  const auto m = b.Build();
  baselines::SlopeOneConfig config;
  config.min_overlap = 2;
  baselines::SlopeOnePredictor s(config);
  s.Fit(m);
  EXPECT_EQ(s.Overlap(0, 1), 0u);  // single co-rater filtered
  // With no usable pair the prediction falls back to the user mean.
  EXPECT_DOUBLE_EQ(s.Predict(1, 0), m.UserMean(1));
}

TEST(SlopeOne, PredictBeforeFitThrows) {
  baselines::SlopeOnePredictor s;
  EXPECT_THROW(s.Predict(0, 0), util::ConfigError);
}

TEST(SlopeOne, BeatsGlobalMean) {
  const auto split = SmallSplit();
  baselines::SlopeOnePredictor s;
  baselines::GlobalMeanPredictor floor;
  EXPECT_LT(eval::Evaluate(s, split).mae, eval::Evaluate(floor, split).mae);
}

// ------------------------------------------------------------------ MF ----

TEST(Mf, RejectsBadConfig) {
  baselines::MfConfig config;
  config.latent_dim = 0;
  EXPECT_THROW(baselines::MfPredictor{config}, util::ConfigError);
  config = baselines::MfConfig{};
  config.learning_rate = 0.0;
  EXPECT_THROW(baselines::MfPredictor{config}, util::ConfigError);
}

TEST(Mf, TrainErrorDecreasesWithEpochs) {
  const auto split = SmallSplit();
  baselines::MfConfig short_run;
  short_run.epochs = 2;
  baselines::MfConfig long_run;
  long_run.epochs = 40;
  baselines::MfPredictor a(short_run);
  a.Fit(split.train);
  baselines::MfPredictor b(long_run);
  b.Fit(split.train);
  EXPECT_LT(b.TrainRmse(), a.TrainRmse());
}

TEST(Mf, DeterministicPerSeed) {
  const auto split = SmallSplit();
  baselines::MfConfig config;
  config.epochs = 5;
  baselines::MfPredictor a(config);
  a.Fit(split.train);
  baselines::MfPredictor b(config);
  b.Fit(split.train);
  EXPECT_DOUBLE_EQ(a.Predict(3, 7), b.Predict(3, 7));
}

TEST(Mf, BeatsGlobalMean) {
  const auto split = SmallSplit();
  baselines::MfPredictor mf;
  baselines::GlobalMeanPredictor floor;
  EXPECT_LT(eval::Evaluate(mf, split).mae, eval::Evaluate(floor, split).mae);
}

TEST(Mf, PredictBeforeFitThrows) {
  baselines::MfPredictor mf;
  EXPECT_THROW(mf.Predict(0, 0), util::ConfigError);
}

// ------------------------------------------------------------- ranking ----

TEST(Ranking, PerfectOracleScoresOne) {
  // A predictor that returns the withheld rating when it exists ranks all
  // relevant items first (given enough list length).
  class Oracle : public eval::Predictor {
   public:
    explicit Oracle(const data::EvalSplit& split) {
      for (const auto& t : split.test) {
        truth_[{t.user, t.item}] = t.actual;
      }
    }
    std::string Name() const override { return "Oracle"; }
    void Fit(const matrix::RatingMatrix&) override {}
    double Predict(matrix::UserId u, matrix::ItemId i) const override {
      const auto it = truth_.find({u, i});
      return it != truth_.end() ? it->second : 0.0;
    }

   private:
    std::map<std::pair<matrix::UserId, matrix::ItemId>, double> truth_;
  };

  const auto split = SmallSplit();
  Oracle oracle(split);
  eval::RankingOptions options;
  options.n = 200;  // longer than any user's relevant set
  options.max_users = 10;
  const auto r = eval::EvaluateTopN(oracle, split, options);
  ASSERT_GT(r.num_users, 0u);
  EXPECT_NEAR(r.recall_at_n, 1.0, 1e-9);
  EXPECT_NEAR(r.ndcg_at_n, 1.0, 1e-9);
  EXPECT_NEAR(r.hit_rate_at_n, 1.0, 1e-9);
}

TEST(Ranking, MetricsBoundedAndConsistent) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  eval::RankingOptions options;
  options.n = 10;
  options.max_users = 15;
  const auto r = eval::EvaluateTopN(model, split, options);
  ASSERT_GT(r.num_users, 0u);
  EXPECT_GE(r.precision_at_n, 0.0);
  EXPECT_LE(r.precision_at_n, 1.0);
  EXPECT_GE(r.recall_at_n, 0.0);
  EXPECT_LE(r.recall_at_n, 1.0);
  EXPECT_GE(r.ndcg_at_n, 0.0);
  EXPECT_LE(r.ndcg_at_n, 1.0 + 1e-9);
  EXPECT_GE(r.hit_rate_at_n, 0.0);
  EXPECT_LE(r.hit_rate_at_n, 1.0);
}

TEST(Ranking, CfsfBeatsRandomScores) {
  class Noise : public eval::Predictor {
   public:
    std::string Name() const override { return "Noise"; }
    void Fit(const matrix::RatingMatrix&) override {}
    double Predict(matrix::UserId u, matrix::ItemId i) const override {
      // Deterministic pseudo-random score, uncorrelated with preferences.
      std::uint64_t s = (static_cast<std::uint64_t>(u) << 32) | i;
      return static_cast<double>(util::SplitMix64(s) % 1000) / 1000.0;
    }
  };
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  Noise noise;
  eval::RankingOptions options;
  options.n = 10;
  options.max_users = 20;
  const auto cfsf = eval::EvaluateTopN(model, split, options);
  const auto rand = eval::EvaluateTopN(noise, split, options);
  EXPECT_GT(cfsf.ndcg_at_n, rand.ndcg_at_n);
}

TEST(Ranking, RejectsZeroN) {
  const auto split = SmallSplit();
  baselines::GlobalMeanPredictor p;
  p.Fit(split.train);
  eval::RankingOptions options;
  options.n = 0;
  EXPECT_THROW(eval::EvaluateTopN(p, split, options), util::ConfigError);
}

// ---------------------------------------------------------- persistence ----

TEST(ModelIo, SaveLoadRoundTripPredictsIdentically) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const std::string path = ::testing::TempDir() + "/cfsf_model_test.bin";
  core::SaveModel(model, path);
  const auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded->fitted());
  for (std::size_t k = 0; k < 50 && k < split.test.size(); ++k) {
    EXPECT_DOUBLE_EQ(
        model.Predict(split.test[k].user, split.test[k].item),
        loaded->Predict(split.test[k].user, split.test[k].item))
        << "query " << k;
  }
}

TEST(ModelIo, RoundTripPreservesConfigAndShapes) {
  const auto split = SmallSplit();
  core::CfsfConfig config = SmallConfig();
  config.lambda = 0.65;
  config.epsilon = 0.22;
  config.time_decay = true;
  core::CfsfModel model(config);
  model.Fit(split.train);
  const std::string path = ::testing::TempDir() + "/cfsf_model_cfg.bin";
  core::SaveModel(model, path);
  const auto loaded = core::LoadModel(path);
  EXPECT_DOUBLE_EQ(loaded->config().lambda, 0.65);
  EXPECT_DOUBLE_EQ(loaded->config().epsilon, 0.22);
  EXPECT_TRUE(loaded->config().time_decay);
  EXPECT_EQ(loaded->train().num_ratings(), model.train().num_ratings());
  EXPECT_EQ(loaded->gis().TotalNeighbors(), model.gis().TotalNeighbors());
  EXPECT_EQ(loaded->cluster_model().num_clusters(),
            model.cluster_model().num_clusters());
}

TEST(ModelIo, UnfittedModelRefusesToSave) {
  core::CfsfModel model(SmallConfig());
  EXPECT_THROW(core::SaveModel(model, ::testing::TempDir() + "/nope.bin"),
               util::ConfigError);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(core::LoadModel("/nonexistent/model.bin"), util::IoError);
}

TEST(ModelIo, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/cfsf_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a model", f);
    std::fclose(f);
  }
  EXPECT_THROW(core::LoadModel(path), util::IoError);
}

TEST(ModelIo, VersionMismatchRejected) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const std::string path = ::testing::TempDir() + "/cfsf_badver.bin";
  core::SaveModel(model, path);
  // Patch the version field (bytes 4..7) to an unsupported value.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const std::uint32_t bogus = 999;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(core::LoadModel(path), util::IoError);
}

TEST(ModelIo, TruncatedFileRejected) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const std::string path = ::testing::TempDir() + "/cfsf_trunc.bin";
  core::SaveModel(model, path);
  // Truncate to the first 100 bytes.
  {
    std::ifstream in(path, std::ios::binary);
    char buffer[100];
    in.read(buffer, sizeof(buffer));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buffer, in.gcount());
  }
  EXPECT_THROW(core::LoadModel(path), util::IoError);
}

// ------------------------------------------------------------ cold start ----

TEST(AddUser, RegistersAndPredicts) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const std::size_t before = model.train().num_users();

  const std::vector<std::pair<matrix::ItemId, matrix::Rating>> ratings{
      {0, 5.0F}, {3, 4.0F}, {7, 1.0F}};
  const auto id = model.AddUser(ratings);
  EXPECT_EQ(id, before);
  EXPECT_EQ(model.train().num_users(), before + 1);
  EXPECT_FLOAT_EQ(*model.train().GetRating(id, 3), 4.0F);

  const double v = model.Predict(id, 20);
  EXPECT_TRUE(std::isfinite(v));
  const auto recs = model.RecommendTopN(id, 5);
  EXPECT_EQ(recs.size(), 5u);
  for (const auto& rec : recs) {
    EXPECT_FALSE(model.train().HasRating(id, rec.item));
  }
}

TEST(AddUser, JoinsTheMostAffineCluster) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  // Clone an existing heavy user's ratings: the newcomer should land in a
  // cluster whose deviations correlate with that profile at least as well
  // as every other cluster (ties possible, so compare affinities).
  const matrix::UserId donor = 0;
  std::vector<std::pair<matrix::ItemId, matrix::Rating>> ratings;
  for (const auto& e : model.train().UserRow(donor)) {
    ratings.emplace_back(e.index, e.value);
  }
  const auto id = model.AddUser(ratings);
  const auto& cm = model.cluster_model();
  const auto row = model.train().UserRow(id);
  const double mean = model.train().UserMean(id);
  const double own = cm.AffinityOf(row, mean, cm.ClusterOf(id));
  for (std::size_t c = 0; c < cm.num_clusters(); ++c) {
    EXPECT_GE(own + 1e-9, cm.AffinityOf(row, mean, static_cast<std::uint32_t>(c)));
  }
}

TEST(AddUser, ValidatesInput) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  EXPECT_THROW(model.AddUser({}), util::ConfigError);
  const std::vector<std::pair<matrix::ItemId, matrix::Rating>> bad{{100000, 3.0F}};
  EXPECT_THROW(model.AddUser(bad), util::ConfigError);
}

TEST(AddUser, GisStaysConsistentWithRebuild) {
  const auto split = SmallSplit();
  core::CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const std::vector<std::pair<matrix::ItemId, matrix::Rating>> ratings{
      {2, 5.0F}, {9, 2.0F}};
  model.AddUser(ratings);

  core::CfsfModel rebuilt(SmallConfig());
  rebuilt.Fit(model.train());
  for (const matrix::ItemId item : {2u, 9u}) {
    const auto a = model.gis().Neighbors(item);
    const auto b = rebuilt.gis().Neighbors(item);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].index, b[k].index);
      EXPECT_NEAR(a[k].similarity, b[k].similarity, 1e-5);
    }
  }
}

// -------------------------------------------------------- cosine kernel ----

TEST(CosineGis, MatchesDirectCosine) {
  const auto split = SmallSplit();
  sim::GisConfig config;
  config.kernel = sim::ItemKernel::kCosine;
  const auto gis = sim::GlobalItemSimilarity::Build(split.train, config);
  for (matrix::ItemId i = 0; i < 10; ++i) {
    for (const auto& n : gis.Neighbors(i)) {
      const auto direct =
          sim::CosineSparse(split.train.ItemCol(i), split.train.ItemCol(n.index));
      EXPECT_NEAR(n.similarity, direct.value, 1e-5);
    }
  }
}

TEST(CosineGis, PccBeatsCosineForCfsf) {
  // Section IV-B's claim: PCC captures rating diversity that pure cosine
  // misses.  On the bias-heavy synthetic data PCC-GIS should not lose.
  const auto split = SmallSplit();
  core::CfsfConfig pcc = SmallConfig();
  core::CfsfConfig cos = SmallConfig();
  cos.gis.kernel = sim::ItemKernel::kCosine;
  core::CfsfModel a(pcc);
  core::CfsfModel b(cos);
  const double mae_pcc = eval::Evaluate(a, split).mae;
  const double mae_cos = eval::Evaluate(b, split).mae;
  EXPECT_LE(mae_pcc, mae_cos + 0.005);
}

TEST(GisFromRows, RoundTrip) {
  const auto split = SmallSplit();
  const auto built = sim::GlobalItemSimilarity::Build(split.train);
  std::vector<std::vector<sim::Neighbor>> rows(built.num_items());
  for (std::size_t i = 0; i < built.num_items(); ++i) {
    const auto row = built.Neighbors(static_cast<matrix::ItemId>(i));
    rows[i].assign(row.begin(), row.end());
  }
  const auto restored =
      sim::GlobalItemSimilarity::FromRows(std::move(rows), built.config());
  EXPECT_EQ(restored.TotalNeighbors(), built.TotalNeighbors());
  EXPECT_FLOAT_EQ(restored.Similarity(0, 1), built.Similarity(0, 1));
}

TEST(GisFromRows, RejectsOutOfRangeIndex) {
  std::vector<std::vector<sim::Neighbor>> rows(2);
  rows[0].push_back(sim::Neighbor{7, 0.5F});
  EXPECT_THROW(sim::GlobalItemSimilarity::FromRows(std::move(rows), {}),
               util::ConfigError);
}

}  // namespace
}  // namespace cfsf
