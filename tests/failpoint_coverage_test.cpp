// Fault-tier coverage for the fail points no other fault test arms
// (ctest label `fault`): movielens.open, movielens.parse_line, cfsf.fit
// and serve.swap.load — plus an inventory sweep that arms every
// kFailPoints row through the live registry.  cfsf_lint's
// undocumented-failpoint rule requires each CFSF_FAILPOINT site literal
// to appear in at least one fault-labelled test; this file is that
// anchor, and each test proves the trip produces the failure mode the
// src/obs/names.hpp inventory promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "data/movielens.hpp"
#include "obs/failpoint.hpp"
#include "obs/names.hpp"
#include "serve/model_generation.hpp"
#include "util/error.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::InjectedFault;
using obs::ScopedFailPoint;

class FailpointCoverageTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

// A tiny but well-formed u.data (default options impose no minimums).
std::string WriteUData() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cfsf_fpcov_u.data").string();
  std::ofstream out(path, std::ios::trunc);
  for (int user = 1; user <= 4; ++user) {
    for (int item = 1; item <= 5; ++item) {
      out << user << "\t" << item << "\t" << 1 + (user + item) % 5 << "\t0\n";
    }
  }
  return path;
}

core::CfsfConfig SmallConfig() {
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 12;
  config.top_k_users = 6;
  return config;
}

data::MovieLensData LoadSmall(const std::string& path) {
  return data::LoadUData(path);
}

TEST_F(FailpointCoverageTest, MovielensOpenInjectsIoFault) {
  const std::string path = WriteUData();
  {
    ScopedFailPoint fp("movielens.open", "always");
    EXPECT_THROW(LoadSmall(path), InjectedFault);
    // Counters live only while the point is armed; read before disarm.
    EXPECT_GE(FailPointRegistry::Global().TripCount("movielens.open"), 1u);
  }
  // Disarmed, the same file loads: the fault really came from the point.
  const auto data = LoadSmall(path);
  EXPECT_EQ(data.matrix.num_users(), 4u);
  std::remove(path.c_str());
}

TEST_F(FailpointCoverageTest, MovielensParseLineInjectsMidStream) {
  const std::string path = WriteUData();
  {
    // Trip on the third line: the loader must abort a partially-read
    // stream, not hand back a truncated matrix.
    ScopedFailPoint fp("movielens.parse_line", "after:2");
    EXPECT_THROW(LoadSmall(path), InjectedFault);
  }
  EXPECT_EQ(LoadSmall(path).matrix.num_users(), 4u);
  std::remove(path.c_str());
}

TEST_F(FailpointCoverageTest, CfsfFitLeavesModelUnfitted) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 40;
  dconfig.num_items = 50;
  dconfig.min_ratings_per_user = 10;
  const auto train = data::GenerateSynthetic(dconfig);

  core::CfsfModel model(SmallConfig());
  {
    ScopedFailPoint fp("cfsf.fit", "always");
    EXPECT_THROW(model.Fit(train), InjectedFault);
  }
  EXPECT_FALSE(model.fitted());
  // The same instance recovers once the point is disarmed.
  model.Fit(train);
  EXPECT_TRUE(model.fitted());
}

TEST_F(FailpointCoverageTest, ServeSwapLoadKeepsOldGeneration) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 40;
  dconfig.num_items = 50;
  dconfig.min_ratings_per_user = 10;
  const auto train = data::GenerateSynthetic(dconfig);

  auto first = std::make_unique<core::CfsfModel>(SmallConfig());
  first->Fit(train);
  const std::string bundle =
      (std::filesystem::temp_directory_path() / "cfsf_fpcov_model.bin")
          .string();
  core::SaveModel(*first, bundle);

  serve::ModelGeneration generations;
  const std::uint64_t installed = generations.Install(std::move(first));
  {
    ScopedFailPoint fp("serve.swap.load", "always");
    EXPECT_THROW(generations.LoadAndSwap(bundle), util::IoError);
    // The failed swap must not disturb the serving generation.
    EXPECT_EQ(generations.ActiveGeneration(), installed);
  }
  EXPECT_GT(generations.LoadAndSwap(bundle), installed);
  std::remove(bundle.c_str());
}

// Every inventory row in src/obs/names.hpp must be armable through the
// live registry, and the inventory must not contain duplicate names —
// the runtime half of the contract cfsf_lint checks statically.
TEST_F(FailpointCoverageTest, InventoryRowsAllArmable) {
  auto& registry = FailPointRegistry::Global();
  std::set<std::string> seen;
  for (const auto& info : obs::names::kFailPoints) {
    EXPECT_TRUE(seen.insert(info.name).second)
        << "duplicate inventory row: " << info.name;
    EXPECT_NE(std::string(info.site), "") << info.name;
    EXPECT_NE(std::string(info.effect), "") << info.name;
    registry.Arm(info.name, "off");
    const auto armed = registry.ArmedNames();
    EXPECT_NE(std::find(armed.begin(), armed.end(), info.name), armed.end());
    registry.Disarm(info.name);
  }
  EXPECT_EQ(seen.size(), obs::names::kNumFailPoints);
}

}  // namespace
}  // namespace cfsf
