#!/usr/bin/env bash
# Runner for the thread-safety negative-compile test (see CMakeLists.txt
# beside this script).  Skips — ctest SKIP_RETURN_CODE 77 — when clang++
# is not on PATH, since the analysis is Clang-only.
#
# Usage: run_tsa_negative.sh <repo-root> <scratch-build-dir>
set -u

root="${1:?usage: run_tsa_negative.sh <repo-root> <scratch-build-dir>}"
scratch="${2:?usage: run_tsa_negative.sh <repo-root> <scratch-build-dir>}"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "SKIP: clang++ not on PATH; thread-safety analysis is Clang-only"
  exit 77
fi

rm -rf "$scratch"
exec cmake -S "$root/tests/tsa_negative" -B "$scratch" \
           -DCMAKE_CXX_COMPILER=clang++ \
           -DCFSF_SOURCE_ROOT="$root"
