// Seeded thread-safety violation: Balance() reads a CFSF_GUARDED_BY
// field without holding its mutex.  The tsa_negative harness asserts
// Clang REJECTS this file under -Wthread-safety -Werror; tsa_clean.cpp
// is the corrected twin that must compile.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  int Balance() const {
    return balance_;  // BUG: mutex_ not held
  }

  void Deposit(int amount) {
    cfsf::util::MutexLock lock(&mutex_);
    balance_ += amount;
  }

 private:
  mutable cfsf::util::Mutex mutex_;
  int balance_ CFSF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Balance();
}
