// Corrected twin of tsa_violation.cpp: every access to the
// CFSF_GUARDED_BY field holds the mutex through a MutexLock scope, so
// this file must compile cleanly under -Wthread-safety -Werror.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  int Balance() const {
    cfsf::util::MutexLock lock(&mutex_);
    return balance_;
  }

  void Deposit(int amount) {
    cfsf::util::MutexLock lock(&mutex_);
    balance_ += amount;
  }

 private:
  mutable cfsf::util::Mutex mutex_;
  int balance_ CFSF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Balance();
}
