// Fault-tier tests (ctest label `fault`) for the rating write-ahead
// log — the crash half of the durability contract:
//
//   * kill-recover harness: a forked writer child is SIGKILLed at
//     seeded random points mid-append and mid-rotate (tiny segment cap
//     forces frequent rotations); every acknowledged record must
//     survive replay, unacked appends may drop, and recovery never
//     yields a corrupt or duplicated record — many seeded iterations;
//   * randomized corruption sweep: bit flips and truncations at sampled
//     offsets must either leave replay a strict prefix of the written
//     sequence or reject the log with a diagnostic naming the bad
//     segment and byte offset (mirrors model_io_fault_test);
//   * armed failpoints: wal.append refuses one record and stays
//     serviceable; wal.fsync and wal.rotate fail-stop the log;
//     wal.replay aborts recovery.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "matrix/types.hpp"
#include "obs/failpoint.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wal/format.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

namespace fs = std::filesystem;

using obs::FailPointRegistry;
using obs::ScopedFailPoint;

// Deterministic record content keyed by its (1-based) lsn, so replay
// can be verified bit-identical without shipping the records across the
// parent/child boundary.
matrix::RatingTriple RecordForLsn(std::uint64_t lsn) {
  matrix::RatingTriple record;
  record.user = static_cast<matrix::UserId>(lsn * 2654435761u);
  record.item = static_cast<matrix::ItemId>(lsn * 40503u + 7);
  record.value = static_cast<matrix::Rating>(1 + (lsn % 5));
  record.timestamp = static_cast<matrix::Timestamp>(1000000000 + lsn);
  return record;
}

class WalCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Global().DisarmAll();
    dir_ = (fs::path(::testing::TempDir()) /
            ("cfsf_wal_crash_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

// Requires `replay` to be an exact, in-order, duplicate-free prefix of
// the RecordForLsn sequence.
void ExpectExactPrefix(const wal::ReplayResult& replay) {
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    ASSERT_EQ(replay.records[i].lsn, i + 1) << "lsn gap or duplicate";
    ASSERT_EQ(replay.records[i].record, RecordForLsn(i + 1))
        << "corrupt record surfaced at lsn " << (i + 1);
  }
}

// ------------------------------------------------- kill-recover ------

// One forked writer, one seeded kill.  Returns the number of records
// replay recovered, so the driver can report coverage.
std::size_t RunKillRecoverIteration(const std::string& dir,
                                    std::uint64_t seed) {
  fs::remove_all(dir);
  util::Rng rng(seed);
  // Kill after this many observed acks, plus a sub-millisecond jitter so
  // the kill lands mid-append / mid-rotate, not always on the ack edge.
  const auto kill_after_acks = static_cast<std::size_t>(rng.NextInt(1, 40));
  const auto jitter_us = static_cast<useconds_t>(rng.NextBounded(400));

  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return 0;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    ADD_FAILURE() << "fork() failed";
    ::close(pipe_fd[0]);
    ::close(pipe_fd[1]);
    return 0;
  }

  if (child == 0) {
    // Writer child: tiny segments (header + 3 records) force a rotation
    // every few appends; every ack is durable before it goes down the
    // pipe.  Bounded loop so a parent bug cannot hang the suite; the
    // pipe never fills (8 bytes per ack < the pipe buffer / bound).
    ::close(pipe_fd[0]);
    try {
      wal::WalOptions options;
      options.max_segment_bytes =
          wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
      wal::WriteAheadLog log(dir, options);
      for (std::uint64_t lsn = 1; lsn <= 4000; ++lsn) {
        const wal::AppendAck ack =
            log.Append(RecordForLsn(lsn), /*require_durable=*/true);
        if (::write(pipe_fd[1], &ack.lsn, sizeof(ack.lsn)) !=
            sizeof(ack.lsn)) {
          ::_exit(3);
        }
      }
    } catch (...) {
      ::_exit(4);
    }
    ::_exit(0);
  }

  ::close(pipe_fd[1]);
  std::size_t acks_seen = 0;
  std::uint64_t highest_acked = 0;
  std::uint64_t lsn = 0;
  while (acks_seen < kill_after_acks &&
         ::read(pipe_fd[0], &lsn, sizeof(lsn)) == sizeof(lsn)) {
    highest_acked = lsn;
    ++acks_seen;
  }
  ::usleep(jitter_us);
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  // The child kept acking during the jitter window; those acks are just
  // as durable, so drain the pipe before judging the replay.
  while (::read(pipe_fd[0], &lsn, sizeof(lsn)) == sizeof(lsn)) {
    highest_acked = lsn;
  }
  ::close(pipe_fd[0]);
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    ADD_FAILURE() << "seed " << seed << ": writer child failed with exit "
                  << WEXITSTATUS(status);
    return 0;
  }

  // Read-only replay first: acked => survives, and nothing corrupt or
  // duplicated ever surfaces.
  const wal::ReplayResult replay = wal::ReplayLog(dir);
  EXPECT_GE(replay.records.size(), highest_acked)
      << "seed " << seed << ": an acked record was lost";
  ExpectExactPrefix(replay);

  // Reopen through the recovery constructor (repairs the torn tail) and
  // keep writing: the log must continue seamlessly from the crash.
  const std::uint64_t recovered = replay.records.size();
  {
    std::vector<wal::RecoveredRecord> records;
    wal::WriteAheadLog log(dir, {}, &records);
    EXPECT_EQ(records.size(), recovered) << "seed " << seed;
    EXPECT_EQ(log.next_lsn(), recovered + 1) << "seed " << seed;
    for (std::uint64_t i = 1; i <= 2; ++i) {
      const wal::AppendAck ack = log.Append(RecordForLsn(recovered + i),
                                            /*require_durable=*/true);
      EXPECT_EQ(ack.lsn, recovered + i) << "seed " << seed;
    }
  }
  const wal::ReplayResult after = wal::ReplayLog(dir);
  EXPECT_EQ(after.records.size(), recovered + 2) << "seed " << seed;
  ExpectExactPrefix(after);
  return replay.records.size();
}

TEST_F(WalCrashTest, KillRecoverHarnessNeverLosesAnAckedRecord) {
  // >= 50 seeded iterations (acceptance floor); the 3-record segment
  // cap means a kill lands mid-rotate in a sizable fraction of them.
  constexpr std::uint64_t kIterations = 56;
  std::size_t total_recovered = 0;
  for (std::uint64_t seed = 1; seed <= kIterations; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    total_recovered += RunKillRecoverIteration(dir_, 0xC0FFEE00 + seed);
    if (HasFatalFailure()) return;
  }
  // Sanity: the harness actually exercised the log (not 56 empty runs).
  EXPECT_GT(total_recovered, kIterations);
}

// ---------------------------------------------- corruption sweep ------

// Writes a known multi-segment log and returns its directory size map.
std::vector<fs::path> BuildLog(const std::string& dir,
                               std::uint64_t records) {
  fs::remove_all(dir);
  wal::WalOptions options;
  options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 4 * wal::kRecordBytes;
  wal::WriteAheadLog log(dir, options);
  for (std::uint64_t lsn = 1; lsn <= records; ++lsn) {
    log.Append(RecordForLsn(lsn));
  }
  log.Close();
  std::vector<fs::path> segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// Shared verdict for every sweep trial: replay either yields a strict
// prefix of the written sequence, or throws an IoError whose diagnostic
// names the damaged segment and byte offset.
void ExpectPrefixOrDiagnostic(const std::string& dir, std::uint64_t written,
                              const std::string& trial) {
  try {
    const wal::ReplayResult replay = wal::ReplayLog(dir);
    EXPECT_LE(replay.records.size(), written) << trial;
    ExpectExactPrefix(replay);
  } catch (const util::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("in segment wal-"), std::string::npos)
        << trial << ": diagnostic does not name the segment: " << what;
    EXPECT_NE(what.find("at offset"), std::string::npos)
        << trial << ": diagnostic does not name the offset: " << what;
  }
}

TEST_F(WalCrashTest, RandomBitFlipsReplayToAPrefixOrAreDiagnosed) {
  constexpr std::uint64_t kRecords = 30;
  util::Rng rng(0xB17F11B5);
  for (int trial = 0; trial < 120; ++trial) {
    const std::vector<fs::path> segments = BuildLog(dir_, kRecords);
    const fs::path& victim = segments[static_cast<std::size_t>(
        rng.NextBounded(segments.size()))];
    std::fstream file(victim,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    const auto size = fs::file_size(victim);
    const auto offset =
        static_cast<std::streamoff>(rng.NextBounded(size));
    file.seekg(offset);
    char byte = 0;
    file.get(byte);
    byte = static_cast<char>(byte ^ (1 << rng.NextBounded(8)));
    file.seekp(offset);
    file.put(byte);
    file.close();

    ExpectPrefixOrDiagnostic(
        dir_, kRecords,
        "flip in " + victim.filename().string() + " at offset " +
            std::to_string(offset));
    if (HasFatalFailure()) return;
  }
}

TEST_F(WalCrashTest, RandomTruncationsReplayToAPrefixOrAreDiagnosed) {
  constexpr std::uint64_t kRecords = 30;
  util::Rng rng(0x7A11CA7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::vector<fs::path> segments = BuildLog(dir_, kRecords);
    const fs::path& victim = segments[static_cast<std::size_t>(
        rng.NextBounded(segments.size()))];
    const auto size = fs::file_size(victim);
    const auto keep = rng.NextBounded(size);  // [0, size)
    fs::resize_file(victim, keep);

    ExpectPrefixOrDiagnostic(
        dir_, kRecords,
        "truncate " + victim.filename().string() + " to " +
            std::to_string(keep) + " bytes");
    if (HasFatalFailure()) return;
  }
}

TEST_F(WalCrashTest, CorruptNonTailSegmentNamesSegmentAndOffset) {
  BuildLog(dir_, 12);  // 3 segments of 4 records
  // Damage the first record frame of the FIRST segment: unambiguously
  // not a torn tail, so replay must refuse rather than truncate.
  const fs::path victim = fs::path(dir_) / wal::SegmentFileName(1);
  std::fstream file(victim, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(wal::kSegmentHeaderBytes));
  file.put('\x7F');
  file.close();
  try {
    wal::ReplayLog(dir_);
    FAIL() << "corrupt non-tail segment was not rejected";
  } catch (const util::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wal-0000000001.log"), std::string::npos) << what;
    EXPECT_NE(what.find("at offset 28"), std::string::npos) << what;
  }
}

// ------------------------------------------------ armed failpoints ----

TEST_F(WalCrashTest, AppendFaultRefusesOneRecordAndStaysServiceable) {
  wal::WriteAheadLog log(dir_);
  log.Append(RecordForLsn(1));
  {
    ScopedFailPoint fp("wal.append", "once");
    EXPECT_THROW(log.Append(RecordForLsn(2)), util::IoError);
  }
  // The refusal poisoned nothing: the log keeps appending, and the
  // refused record never reached disk.
  EXPECT_TRUE(log.available());
  EXPECT_EQ(log.Append(RecordForLsn(2)).lsn, 2u);
  log.Close();
  const wal::ReplayResult replay = wal::ReplayLog(dir_);
  EXPECT_EQ(replay.records.size(), 2u);
  ExpectExactPrefix(replay);
}

TEST_F(WalCrashTest, FsyncFaultFailStopsTheLog) {
  wal::WriteAheadLog log(dir_);
  log.Append(RecordForLsn(1));
  {
    ScopedFailPoint fp("wal.fsync", "once");
    EXPECT_THROW(log.Append(RecordForLsn(2)), util::IoError);
  }
  // Durability is unknowable after a failed barrier: fail-stop.
  EXPECT_FALSE(log.available());
  EXPECT_NE(log.unavailable_reason().find("durability barrier"),
            std::string::npos);
  EXPECT_THROW(log.Append(RecordForLsn(3)), util::IoError);
  // What was acked before the fault stays drainable.
  std::vector<wal::AckedRecord> drained;
  EXPECT_EQ(log.DrainAcked(&drained), 1u);
}

TEST_F(WalCrashTest, RotateFaultFailStopsButAckedRecordsSurviveReopen) {
  wal::WalOptions options;
  options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 2 * wal::kRecordBytes;
  wal::WriteAheadLog log(dir_, options);
  log.Append(RecordForLsn(1));
  log.Append(RecordForLsn(2));  // segment now full
  {
    ScopedFailPoint fp("wal.rotate", "once");
    EXPECT_THROW(log.Append(RecordForLsn(3)), util::IoError);
  }
  EXPECT_FALSE(log.available());
  EXPECT_NE(log.unavailable_reason().find("rotation failed"),
            std::string::npos);
  // A fresh log over the same directory recovers both acked records and
  // appends where the poisoned one left off.
  std::vector<wal::RecoveredRecord> recovered;
  wal::WriteAheadLog reopened(dir_, options, &recovered);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(reopened.Append(RecordForLsn(3)).lsn, 3u);
}

TEST_F(WalCrashTest, ReplayFaultAbortsRecovery) {
  { wal::WriteAheadLog log(dir_); }
  ScopedFailPoint fp("wal.replay", "once");
  EXPECT_THROW(wal::ReplayLog(dir_), util::IoError);
}

}  // namespace
}  // namespace cfsf
