// Tests for the robustness layer: the fail-point framework (trigger
// grammar, determinism, env arming, wired sites), the graceful-
// degradation prediction ladder, and the lenient dataset loader.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/cfsf.hpp"
#include "data/movielens.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "obs/failpoint.hpp"
#include "robust/fallback.hpp"
#include "util/error.hpp"

namespace cfsf {
namespace {

using obs::FailPointRegistry;
using obs::InjectedFault;
using obs::ScopedFailPoint;

// The registry is process-global; every test starts and ends clean.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

std::vector<bool> TripPattern(const std::string& spec, std::size_t hits,
                              std::uint64_t seed) {
  auto& registry = FailPointRegistry::Global();
  registry.SetSeed(seed);
  registry.Arm("test.pattern", spec);
  std::vector<bool> pattern;
  for (std::size_t i = 0; i < hits; ++i) {
    try {
      registry.MaybeTrip("test.pattern");
      pattern.push_back(false);
    } catch (const InjectedFault&) {
      pattern.push_back(true);
    }
  }
  registry.Disarm("test.pattern");
  return pattern;
}

TEST_F(FailPointTest, UnarmedRegistryIsInert) {
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  // An unarmed name passes through untouched.
  EXPECT_NO_THROW(FailPointRegistry::Global().MaybeTrip("never.armed"));
  EXPECT_EQ(FailPointRegistry::Global().TripCount("never.armed"), 0u);
}

TEST_F(FailPointTest, AlwaysAndOffSemantics) {
  EXPECT_EQ(TripPattern("always", 4, 1), (std::vector<bool>{1, 1, 1, 1}));
  EXPECT_EQ(TripPattern("off", 4, 1), (std::vector<bool>{0, 0, 0, 0}));
}

TEST_F(FailPointTest, OnceFirstAfterEverySemantics) {
  EXPECT_EQ(TripPattern("once", 4, 1), (std::vector<bool>{1, 0, 0, 0}));
  EXPECT_EQ(TripPattern("first:2", 5, 1), (std::vector<bool>{1, 1, 0, 0, 0}));
  EXPECT_EQ(TripPattern("after:2", 5, 1), (std::vector<bool>{0, 0, 1, 1, 1}));
  EXPECT_EQ(TripPattern("every:3", 7, 1),
            (std::vector<bool>{0, 0, 1, 0, 0, 1, 0}));
}

TEST_F(FailPointTest, ProbIsDeterministicUnderSeed) {
  const auto a = TripPattern("prob:0.5", 200, 42);
  const auto b = TripPattern("prob:0.5", 200, 42);
  EXPECT_EQ(a, b) << "same seed must yield a bit-identical trip pattern";
  const std::size_t trips =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(trips, 50u);
  EXPECT_LT(trips, 150u);
  // A different seed should (overwhelmingly) change the pattern.
  EXPECT_NE(a, TripPattern("prob:0.5", 200, 43));
}

TEST_F(FailPointTest, ProbEdgeValues) {
  EXPECT_EQ(TripPattern("prob:0.0", 10, 7), std::vector<bool>(10, false));
  EXPECT_EQ(TripPattern("prob:1.0", 10, 7), std::vector<bool>(10, true));
}

TEST_F(FailPointTest, MalformedSpecsThrowConfigError) {
  auto& registry = FailPointRegistry::Global();
  EXPECT_THROW(registry.Arm("x", ""), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "sometimes"), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "first:"), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "first:zero"), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "every:0"), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "prob:1.5"), util::ConfigError);
  EXPECT_THROW(registry.Arm("x", "prob:-0.1"), util::ConfigError);
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
}

TEST_F(FailPointTest, ArmManyAndCounts) {
  auto& registry = FailPointRegistry::Global();
  registry.ArmMany("a=always;b=off");
  EXPECT_TRUE(FailPointRegistry::AnyArmed());
  const auto names = registry.ArmedNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_THROW(registry.MaybeTrip("a"), InjectedFault);
  EXPECT_NO_THROW(registry.MaybeTrip("b"));
  EXPECT_NO_THROW(registry.MaybeTrip("b"));
  EXPECT_EQ(registry.HitCount("a"), 1u);
  EXPECT_EQ(registry.TripCount("a"), 1u);
  EXPECT_EQ(registry.HitCount("b"), 2u);
  EXPECT_EQ(registry.TripCount("b"), 0u);
  registry.DisarmAll();
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
}

TEST_F(FailPointTest, EnvArming) {
  ::setenv("CFSF_FAILPOINTS", "env.point=first:1;env.other=off", 1);
  ::setenv("CFSF_FAILPOINTS_SEED", "99", 1);
  auto& registry = FailPointRegistry::Global();
  EXPECT_EQ(registry.ArmFromEnv(), 2u);
  EXPECT_THROW(registry.MaybeTrip("env.point"), InjectedFault);
  EXPECT_NO_THROW(registry.MaybeTrip("env.point"));
  ::unsetenv("CFSF_FAILPOINTS");
  ::unsetenv("CFSF_FAILPOINTS_SEED");
}

TEST_F(FailPointTest, MalformedEnvEntriesAreSkippedNotFatal) {
  ::setenv("CFSF_FAILPOINTS", "good=always;bad-no-equals;worse=banana", 1);
  auto& registry = FailPointRegistry::Global();
  EXPECT_EQ(registry.ArmFromEnv(), 1u);
  EXPECT_THROW(registry.MaybeTrip("good"), InjectedFault);
  ::unsetenv("CFSF_FAILPOINTS");
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint guard("scoped.point", "always");
    EXPECT_TRUE(FailPointRegistry::AnyArmed());
    EXPECT_THROW(FailPointRegistry::Global().MaybeTrip("scoped.point"),
                 InjectedFault);
  }
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  EXPECT_NO_THROW(FailPointRegistry::Global().MaybeTrip("scoped.point"));
}

// ------------------------------------------------- wired failpoints ----

TEST_F(FailPointTest, MovielensParseLineFailpointFires) {
  ScopedFailPoint guard("movielens.parse_line", "once");
  EXPECT_THROW(data::ParseUData("1\t2\t3\t4\n"), InjectedFault);
  // Disarmed replay parses fine (trigger was `once` and already spent).
  EXPECT_EQ(data::ParseUData("1\t2\t3\t4\n").matrix.num_ratings(), 1u);
}

TEST_F(FailPointTest, ThreadPoolTaskFailpointSurfacesAtWait) {
  ScopedFailPoint guard("threadpool.task", "once");
  par::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  EXPECT_THROW(pool.Wait(), InjectedFault);
  // The pool survives the injected fault and keeps serving.
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST_F(FailPointTest, CfsfFitFailpointFires) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 30;
  dconfig.num_items = 40;
  dconfig.min_ratings_per_user = 10;
  const auto m = data::GenerateSynthetic(dconfig);
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 10;
  config.top_k_users = 5;
  core::CfsfModel model(config);
  {
    ScopedFailPoint guard("cfsf.fit", "always");
    EXPECT_THROW(model.Fit(m), InjectedFault);
    EXPECT_FALSE(model.fitted());
  }
  EXPECT_NO_THROW(model.Fit(m));
  EXPECT_TRUE(model.fitted());
}

// ---------------------------------------------------------- ladder ----

class LadderTest : public FailPointTest {
 protected:
  static core::CfsfModel& Model() {
    static core::CfsfModel* model = [] {
      data::SyntheticConfig dconfig;
      dconfig.num_users = 60;
      dconfig.num_items = 80;
      dconfig.min_ratings_per_user = 15;
      core::CfsfConfig config;
      config.num_clusters = 5;
      config.top_m_items = 15;
      config.top_k_users = 8;
      auto* m = new core::CfsfModel(config);  // cfsf-lint: allow(naked-new)
      m->Fit(data::GenerateSynthetic(dconfig));
      return m;
    }();
    return *model;
  }
};

TEST_F(LadderTest, FullRungWhenNothingFails) {
  robust::FallbackPredictor predictor(Model());
  const auto result =
      predictor.PredictWithLadder(0, 0, robust::Deadline());
  EXPECT_EQ(result.rung, robust::PredictionRung::kFull);
  EXPECT_FALSE(result.deadline_overrun);
  EXPECT_GE(result.value, 1.0);
  EXPECT_LE(result.value, 5.0);
  EXPECT_DOUBLE_EQ(result.value,
                   std::clamp(Model().Predict(0, 0), 1.0, 5.0));
}

TEST_F(LadderTest, FallsBackToSirWhenFullPathFaults) {
  robust::FallbackPredictor predictor(Model());
  ScopedFailPoint guard("cfsf.predict", "always");
  const auto result =
      predictor.PredictWithLadder(0, 0, robust::Deadline());
  // SIR′ may have no evidence for (0,0); either rung 1 or rung 2 is
  // acceptable, but never rung 0 and always a finite in-range value.
  EXPECT_NE(result.rung, robust::PredictionRung::kFull);
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_GE(result.value, 1.0);
  EXPECT_LE(result.value, 5.0);
}

TEST_F(LadderTest, FallsBackToUserMeanWhenSirFaultsToo) {
  robust::FallbackPredictor predictor(Model());
  ScopedFailPoint full("cfsf.predict", "always");
  ScopedFailPoint sir("cfsf.predict.sir", "always");
  const auto result =
      predictor.PredictWithLadder(3, 7, robust::Deadline());
  EXPECT_EQ(result.rung, robust::PredictionRung::kUserMean);
  EXPECT_DOUBLE_EQ(result.value,
                   std::clamp(Model().UserMeanOf(3), 1.0, 5.0));
}

TEST_F(LadderTest, OutOfRangeUserLandsOnGlobalMean) {
  robust::FallbackPredictor predictor(Model());
  const auto user =
      static_cast<matrix::UserId>(Model().NumUsers() + 100);
  const auto result =
      predictor.PredictWithLadder(user, 0, robust::Deadline());
  EXPECT_EQ(result.rung, robust::PredictionRung::kGlobalMean);
  EXPECT_DOUBLE_EQ(result.value,
                   std::clamp(Model().GlobalMeanOf(), 1.0, 5.0));
}

TEST_F(LadderTest, ExpiredDeadlineSkipsExpensiveRungs) {
  robust::FallbackPredictor predictor(Model());
  auto& overruns = obs::MetricsRegistry::Global().GetCounter(
      "robust.deadline_overruns");
  const auto before = overruns.Value();
  const auto result = predictor.PredictWithLadder(
      1, 1, robust::Deadline::After(std::chrono::microseconds(0)));
  EXPECT_TRUE(result.deadline_overrun);
  EXPECT_EQ(result.rung, robust::PredictionRung::kUserMean);
  EXPECT_GE(result.value, 1.0);
  EXPECT_LE(result.value, 5.0);
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(overruns.Value(), before + 1);
  }
}

TEST_F(LadderTest, ThrowPolicySurfacesDeadline) {
  robust::FallbackOptions options;
  options.policy = robust::DegradationPolicy::kThrow;
  robust::FallbackPredictor predictor(Model(),
                                      options);
  EXPECT_THROW(
      predictor.PredictWithLadder(
          0, 0, robust::Deadline::After(std::chrono::microseconds(0))),
      robust::DeadlineExceeded);
}

TEST_F(LadderTest, ThrowPolicySurfacesInjectedFaults) {
  robust::FallbackOptions options;
  options.policy = robust::DegradationPolicy::kThrow;
  robust::FallbackPredictor predictor(Model(),
                                      options);
  ScopedFailPoint guard("cfsf.predict", "always");
  EXPECT_THROW(predictor.PredictWithLadder(0, 0, robust::Deadline()),
               InjectedFault);
}

TEST_F(LadderTest, FallbackCountersAdvance) {
  if (!obs::MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
  auto& registry = obs::MetricsRegistry::Global();
  auto& sir = registry.GetCounter("robust.fallback.sir");
  auto& user_mean = registry.GetCounter("robust.fallback.user_mean");
  const auto sir_before = sir.Value();
  const auto mean_before = user_mean.Value();
  robust::FallbackPredictor predictor(Model());
  ScopedFailPoint full("cfsf.predict", "always");
  for (matrix::UserId u = 0; u < 10; ++u) {
    const auto result = predictor.PredictWithLadder(u, u, robust::Deadline());
    EXPECT_NE(result.rung, robust::PredictionRung::kFull);
  }
  EXPECT_GT(sir.Value() + user_mean.Value(), sir_before + mean_before);
}

TEST_F(LadderTest, BatchDeadlineStopsTierDescentOnceSpent) {
  robust::FallbackPredictor predictor(Model());
  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
  for (matrix::UserId u = 0; u < 30; ++u) queries.emplace_back(u, u % 7);

  // An already-expired batch deadline: every query must skip the
  // expensive rungs and resolve from the mean anchors.
  const auto spent = predictor.PredictBatchWithLadder(
      queries, robust::Deadline::After(std::chrono::microseconds(0)));
  ASSERT_EQ(spent.size(), queries.size());
  for (const auto& result : spent) {
    EXPECT_TRUE(result.deadline_overrun);
    EXPECT_TRUE(result.rung == robust::PredictionRung::kUserMean ||
                result.rung == robust::PredictionRung::kGlobalMean);
    EXPECT_GE(result.value, 1.0);
    EXPECT_LE(result.value, 5.0);
  }

  // An unlimited batch deadline serves the full rung.
  const auto fresh =
      predictor.PredictBatchWithLadder(queries, robust::Deadline());
  ASSERT_EQ(fresh.size(), queries.size());
  EXPECT_EQ(fresh.front().rung, robust::PredictionRung::kFull);
}

TEST_F(LadderTest, BatchBudgetOptionFlowsThroughPredictBatch) {
  robust::FallbackOptions options;
  options.batch_budget = std::chrono::microseconds(1);
  robust::FallbackPredictor predictor(Model(), options);
  auto& overruns = obs::MetricsRegistry::Global().GetCounter(
      "robust.deadline_overruns");
  const auto before = overruns.Value();
  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
  for (matrix::UserId u = 0; u < 40; ++u) queries.emplace_back(u, u % 9);
  const auto out = predictor.PredictBatch(queries);
  ASSERT_EQ(out.size(), queries.size());
  for (const double v : out) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 5.0);
  }
  if (obs::MetricsEnabled()) {
    // With a 1us budget over 40 queries the shared deadline expires well
    // before the batch ends; the tail of the batch must have overrun.
    EXPECT_GT(overruns.Value(), before);
  }
}

TEST_F(LadderTest, DeadlineEarlierOfPicksTighterBudget) {
  const auto unlimited = robust::Deadline();
  const auto soon = robust::Deadline::After(std::chrono::microseconds(0));
  const auto later = robust::Deadline::After(std::chrono::hours(1));
  EXPECT_TRUE(robust::Deadline::EarlierOf(unlimited, unlimited).unlimited());
  EXPECT_TRUE(robust::Deadline::EarlierOf(unlimited, soon).Expired());
  EXPECT_TRUE(robust::Deadline::EarlierOf(soon, unlimited).Expired());
  EXPECT_TRUE(robust::Deadline::EarlierOf(soon, later).Expired());
  EXPECT_FALSE(robust::Deadline::EarlierOf(later, unlimited).Expired());
}

TEST_F(LadderTest, FloorRungPinsDegradedTiers) {
  robust::FallbackPredictor predictor(Model());
  const auto sir_floor = predictor.PredictWithLadder(
      0, 0, robust::Deadline(), robust::PredictionRung::kSir);
  EXPECT_NE(sir_floor.rung, robust::PredictionRung::kFull);
  const auto mean_floor = predictor.PredictWithLadder(
      0, 0, robust::Deadline(), robust::PredictionRung::kUserMean);
  EXPECT_EQ(mean_floor.rung, robust::PredictionRung::kUserMean);
  EXPECT_DOUBLE_EQ(mean_floor.value,
                   std::clamp(Model().UserMeanOf(0), 1.0, 5.0));
  const auto global_floor = predictor.PredictWithLadder(
      0, 0, robust::Deadline(), robust::PredictionRung::kGlobalMean);
  EXPECT_EQ(global_floor.rung, robust::PredictionRung::kGlobalMean);
  EXPECT_DOUBLE_EQ(global_floor.value,
                   std::clamp(Model().GlobalMeanOf(), 1.0, 5.0));
}

TEST_F(LadderTest, PredictBatchIsTotalUnderProbFaults) {
  robust::FallbackPredictor predictor(Model());
  FailPointRegistry::Global().SetSeed(7);
  ScopedFailPoint full("cfsf.predict", "prob:0.5");
  ScopedFailPoint sir("cfsf.predict.sir", "prob:0.5");
  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
  for (matrix::UserId u = 0; u < 20; ++u) queries.emplace_back(u, u % 11);
  const auto out = predictor.PredictBatch(queries);
  ASSERT_EQ(out.size(), queries.size());
  for (const double v : out) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 5.0);
  }
}

// -------------------------------------------------- lenient loader ----

constexpr const char* kDamagedUData =
    "1\t10\t4\t100\n"
    "2\t10\tnot-a-rating\t100\n"
    "2\t11\t3\t100\n"
    "3\t12\n"
    "3\t10\t5\t100\n";

TEST(LenientLoader, StrictModeThrowsOnFirstBadLine) {
  EXPECT_THROW(data::ParseUData(kDamagedUData), util::IoError);
}

TEST(LenientLoader, LenientModeQuarantinesAndKeepsGoodLines) {
  data::MovieLensOptions options;
  options.lenient = true;
  const auto loaded = data::ParseUData(kDamagedUData, options);
  EXPECT_EQ(loaded.quarantined_lines, 2u);
  EXPECT_EQ(loaded.matrix.num_ratings(), 3u);
  EXPECT_EQ(loaded.matrix.num_users(), 3u);
}

TEST(LenientLoader, QuarantineMetricAdvances) {
  if (!obs::MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("data.quarantined_lines");
  const auto before = counter.Value();
  data::MovieLensOptions options;
  options.lenient = true;
  (void)data::ParseUData(kDamagedUData, options);
  EXPECT_EQ(counter.Value(), before + 2);
}

TEST(LenientLoader, CleanFileQuarantinesNothing) {
  data::MovieLensOptions options;
  options.lenient = true;
  const auto loaded = data::ParseUData("1\t10\t4\t100\n", options);
  EXPECT_EQ(loaded.quarantined_lines, 0u);
  EXPECT_EQ(loaded.matrix.num_ratings(), 1u);
}

}  // namespace
}  // namespace cfsf
