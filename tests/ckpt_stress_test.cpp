// Stress-tier test (ctest label `stress`, run under TSan by the
// sanitizer presets): the whole checkpointed-ingestion pipeline under
// concurrency — parallel appenders, the DeltaFolder's background fold
// thread, the CheckpointManager's background checkpoint+compact thread,
// and a reader hammering the snapshot/status surfaces — followed by a
// full consistency audit and a cold recovery of whatever the run left
// on disk.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/recover.hpp"
#include "core/cfsf.hpp"
#include "data/synthetic.hpp"
#include "matrix/types.hpp"
#include "serve/delta_folder.hpp"
#include "serve/model_generation.hpp"
#include "wal/format.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kUsers = 30;
constexpr std::uint32_t kItems = 40;
constexpr std::size_t kAppenders = 4;
constexpr std::size_t kAppendsPerThread = 120;

std::unique_ptr<core::CfsfModel> TinySeed() {
  data::SyntheticConfig dconfig;
  dconfig.num_users = kUsers;
  dconfig.num_items = kItems;
  dconfig.min_ratings_per_user = 8;
  dconfig.seed = 77;
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 12;
  config.top_k_users = 6;
  auto model = std::make_unique<core::CfsfModel>(config);
  model->Fit(data::GenerateSynthetic(dconfig));
  return model;
}

TEST(CkptStressTest, ConcurrentAppendFoldCheckpointCompactAndRead) {
  const std::string root =
      (fs::path(::testing::TempDir()) / "cfsf_ckpt_stress").string();
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string wal_dir = root + "/wal";
  const std::string ckpt_dir = root + "/ckpt";

  {
    wal::WalOptions wal_options;
    wal_options.max_segment_bytes =
        wal::kSegmentHeaderBytes + 16 * wal::kRecordBytes;
    wal::WriteAheadLog log(wal_dir, wal_options);
    serve::ModelGeneration models;
    serve::DeltaFolderOptions folder_options;
    folder_options.poll_interval = std::chrono::milliseconds(2);
    serve::DeltaFolder folder(log, models, TinySeed(), folder_options);
    folder.PublishNow();
    ckpt::CheckpointOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    ckpt_options.keep_last = 2;
    ckpt_options.interval = std::chrono::milliseconds(5);
    ckpt::CheckpointManager manager(folder, log, ckpt_options);

    folder.Start();
    manager.Start();

    // Appenders: every record is in-matrix and carries a unique
    // request id, so dedup tables churn while nothing actually dedups.
    std::vector<std::thread> appenders;
    for (std::size_t t = 0; t < kAppenders; ++t) {
      appenders.emplace_back([&, t] {
        for (std::size_t i = 0; i < kAppendsPerThread; ++i) {
          matrix::RatingTriple record;
          record.user = static_cast<matrix::UserId>(t % kUsers);
          record.item = static_cast<matrix::ItemId>(i % kItems);
          record.value = static_cast<matrix::Rating>(1.0 + (i % 9) * 0.5);
          record.timestamp =
              static_cast<matrix::Timestamp>(1000000000 + t * 1000 + i);
          const wal::AppendAck ack =
              log.Append(record, /*require_durable=*/true,
                         /*request_id=*/1 + t * kAppendsPerThread + i);
          ASSERT_TRUE(ack.durable);
          ASSERT_FALSE(ack.deduplicated);
        }
      });
    }

    // Reader: hammers every cross-thread surface the checkpointer and
    // /healthz use while the writers run.
    std::atomic<bool> stop_reader{false};
    std::thread reader([&] {
      while (!stop_reader.load(std::memory_order_acquire)) {
        const serve::ShadowSnapshot snapshot = folder.SnapshotShadow();
        ASSERT_NE(snapshot.model, nullptr);
        ASSERT_LE(snapshot.watermark, log.next_lsn() - 1);
        (void)manager.status();
        (void)folder.fold_watermark();
        (void)folder.skipped_records();
        (void)models.Active();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    for (std::thread& thread : appenders) thread.join();
    // Let the background fold/checkpoint threads chew on the tail.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop_reader.store(true, std::memory_order_release);
    reader.join();
    manager.Stop();
    folder.Stop();
    folder.FoldOnce();  // drain whatever raced the Stop()

    // Consistency: every acked record was drained exactly once (all
    // in-matrix, so none skipped), and the fold watermark reached the
    // last assigned lsn.
    constexpr std::uint64_t kTotal = kAppenders * kAppendsPerThread;
    EXPECT_EQ(log.next_lsn(), kTotal + 1);
    EXPECT_EQ(folder.folded_records(), kTotal);
    EXPECT_EQ(folder.skipped_records(), 0u);
    EXPECT_EQ(folder.fold_watermark(), kTotal);

    const ckpt::CheckpointStatus status = manager.status();
    EXPECT_GE(status.writes, 1u)
        << "the background checkpointer never ran";
    EXPECT_EQ(status.failures, 0u) << status.last_error;
    EXPECT_FALSE(status.compaction_failed) << status.last_error;
    EXPECT_LE(status.last_watermark, kTotal);
    log.Close();
  }

  // Cold recovery of whatever the concurrent run left behind must be
  // clean and bounded.
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir;
  options.wal_dir = wal_dir;
  options.seed_model = TinySeed;
  const ckpt::RecoveryResult result = ckpt::Recover(options);
  EXPECT_FALSE(result.info.degraded_history);
  EXPECT_EQ(result.info.skipped_records, 0u);
  const wal::ReplayResult replay = wal::ReplayLog(wal_dir);
  std::size_t past_watermark = 0;
  for (const wal::RecoveredRecord& record : replay.records) {
    if (record.lsn > result.info.watermark) ++past_watermark;
  }
  EXPECT_EQ(result.info.replayed_records, past_watermark);
  fs::remove_all(root);
}

}  // namespace
}  // namespace cfsf
