// Unit tests for cfsf::matrix — builder, dual indexes, means, stats.
#include <gtest/gtest.h>

#include "matrix/dense_matrix.hpp"
#include "matrix/rating_matrix.hpp"
#include "matrix/stats.hpp"
#include "util/error.hpp"

namespace cfsf::matrix {
namespace {

RatingMatrix SmallMatrix() {
  // users x items (3 x 4):
  //      i0  i1  i2  i3
  // u0    5   3   -   1
  // u1    4   -   2   -
  // u2    -   3   4   5
  RatingMatrixBuilder b(3, 4);
  b.Add(0, 0, 5);
  b.Add(0, 1, 3);
  b.Add(0, 3, 1);
  b.Add(1, 0, 4);
  b.Add(1, 2, 2);
  b.Add(2, 1, 3);
  b.Add(2, 2, 4);
  b.Add(2, 3, 5);
  return b.Build();
}

TEST(Builder, CountsAndShape) {
  const auto m = SmallMatrix();
  EXPECT_EQ(m.num_users(), 3u);
  EXPECT_EQ(m.num_items(), 4u);
  EXPECT_EQ(m.num_ratings(), 8u);
}

TEST(Builder, RejectsOutOfRangeIds) {
  RatingMatrixBuilder b(2, 2);
  EXPECT_THROW(b.Add(2, 0, 3), util::DimensionError);
  EXPECT_THROW(b.Add(0, 2, 3), util::DimensionError);
}

TEST(Builder, RejectsNonFiniteRating) {
  RatingMatrixBuilder b(1, 1);
  EXPECT_THROW(b.Add(0, 0, std::numeric_limits<float>::quiet_NaN()),
               util::DimensionError);
}

TEST(Builder, DuplicateLastWins) {
  RatingMatrixBuilder b(1, 1);
  b.Add(0, 0, 2);
  b.Add(0, 0, 5);
  const auto m = b.Build();
  EXPECT_EQ(m.num_ratings(), 1u);
  EXPECT_FLOAT_EQ(*m.GetRating(0, 0), 5.0F);
}

TEST(Builder, UnsortedInputIsSorted) {
  RatingMatrixBuilder b(2, 3);
  b.Add(1, 2, 1);
  b.Add(0, 1, 2);
  b.Add(1, 0, 3);
  b.Add(0, 0, 4);
  const auto m = b.Build();
  const auto row0 = m.UserRow(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_LT(row0[0].index, row0[1].index);
  const auto row1 = m.UserRow(1);
  ASSERT_EQ(row1.size(), 2u);
  EXPECT_LT(row1[0].index, row1[1].index);
}

TEST(Builder, ReusableAfterBuild) {
  RatingMatrixBuilder b(1, 1);
  b.Add(0, 0, 3);
  const auto m1 = b.Build();
  EXPECT_EQ(b.pending(), 0u);
  b.Add(0, 0, 4);
  const auto m2 = b.Build();
  EXPECT_FLOAT_EQ(*m2.GetRating(0, 0), 4.0F);
  EXPECT_FLOAT_EQ(*m1.GetRating(0, 0), 3.0F);
}

TEST(RatingMatrix, UserRowContents) {
  const auto m = SmallMatrix();
  const auto row = m.UserRow(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], (Entry{0, 5.0F}));
  EXPECT_EQ(row[1], (Entry{1, 3.0F}));
  EXPECT_EQ(row[2], (Entry{3, 1.0F}));
}

TEST(RatingMatrix, ItemColContents) {
  const auto m = SmallMatrix();
  const auto col = m.ItemCol(2);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], (Entry{1, 2.0F}));
  EXPECT_EQ(col[1], (Entry{2, 4.0F}));
}

TEST(RatingMatrix, CsrAndCscAgree) {
  const auto m = SmallMatrix();
  std::size_t csc_total = 0;
  for (std::size_t i = 0; i < m.num_items(); ++i) {
    for (const auto& e : m.ItemCol(static_cast<ItemId>(i))) {
      EXPECT_FLOAT_EQ(*m.GetRating(e.index, static_cast<ItemId>(i)), e.value);
      ++csc_total;
    }
  }
  EXPECT_EQ(csc_total, m.num_ratings());
}

TEST(RatingMatrix, GetRatingHitsAndMisses) {
  const auto m = SmallMatrix();
  EXPECT_FLOAT_EQ(*m.GetRating(0, 0), 5.0F);
  EXPECT_FALSE(m.GetRating(0, 2).has_value());
  EXPECT_FALSE(m.GetRating(1, 3).has_value());
  EXPECT_TRUE(m.HasRating(2, 3));
}

TEST(RatingMatrix, Means) {
  const auto m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.UserMean(0), 3.0);         // (5+3+1)/3
  EXPECT_DOUBLE_EQ(m.UserMean(1), 3.0);         // (4+2)/2
  EXPECT_DOUBLE_EQ(m.UserMean(2), 4.0);         // (3+4+5)/3
  EXPECT_DOUBLE_EQ(m.ItemMean(0), 4.5);         // (5+4)/2
  EXPECT_DOUBLE_EQ(m.ItemMean(1), 3.0);
  EXPECT_DOUBLE_EQ(m.ItemMean(2), 3.0);
  EXPECT_DOUBLE_EQ(m.ItemMean(3), 3.0);
  EXPECT_DOUBLE_EQ(m.GlobalMean(), 27.0 / 8.0);
}

TEST(RatingMatrix, EmptyUserFallsBackToGlobalMean) {
  RatingMatrixBuilder b(2, 1);
  b.Add(0, 0, 4);
  const auto m = b.Build();
  EXPECT_DOUBLE_EQ(m.UserMean(1), 4.0);
  EXPECT_TRUE(m.UserRow(1).empty());
}

TEST(RatingMatrix, EmptyItemFallsBackToGlobalMean) {
  RatingMatrixBuilder b(1, 2);
  b.Add(0, 0, 2);
  const auto m = b.Build();
  EXPECT_DOUBLE_EQ(m.ItemMean(1), 2.0);
  EXPECT_TRUE(m.ItemCol(1).empty());
}

TEST(RatingMatrix, Density) {
  const auto m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.Density(), 8.0 / 12.0);
}

TEST(RatingMatrix, EmptyMatrix) {
  const RatingMatrix m;
  EXPECT_EQ(m.num_users(), 0u);
  EXPECT_EQ(m.num_ratings(), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.0);
}

TEST(RatingMatrix, ToTriplesRoundTrip) {
  const auto m = SmallMatrix();
  const auto triples = m.ToTriples();
  ASSERT_EQ(triples.size(), m.num_ratings());
  RatingMatrixBuilder b(3, 4);
  for (const auto& t : triples) b.Add(t);
  const auto m2 = b.Build();
  EXPECT_EQ(m2.ToTriples(), triples);
}

TEST(RatingMatrix, TimestampsPreserved) {
  RatingMatrixBuilder b(1, 2);
  b.Add(0, 0, 3, 100);
  b.Add(0, 1, 4, 200);
  const auto m = b.Build();
  EXPECT_TRUE(m.has_timestamps());
  const auto ts = m.UserRowTimestamps(0);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], 100);
  EXPECT_EQ(ts[1], 200);
}

TEST(RatingMatrix, NoTimestampsMeansEmptySpan) {
  const auto m = SmallMatrix();
  EXPECT_FALSE(m.has_timestamps());
  EXPECT_TRUE(m.UserRowTimestamps(0).empty());
}

TEST(RatingMatrix, KeepUserPrefix) {
  const auto m = SmallMatrix();
  const auto prefix = m.KeepUserPrefix(2);
  EXPECT_EQ(prefix.num_users(), 2u);
  EXPECT_EQ(prefix.num_items(), 4u);
  EXPECT_EQ(prefix.num_ratings(), 5u);
  EXPECT_FLOAT_EQ(*prefix.GetRating(1, 2), 2.0F);
  EXPECT_THROW(m.KeepUserPrefix(10), util::ConfigError);
}

TEST(RatingMatrix, WithRatingInsertsAndOverwrites) {
  const auto m = SmallMatrix();
  const auto inserted = m.WithRating(1, 3, 5);
  EXPECT_EQ(inserted.num_ratings(), m.num_ratings() + 1);
  EXPECT_FLOAT_EQ(*inserted.GetRating(1, 3), 5.0F);
  const auto overwritten = m.WithRating(0, 0, 1);
  EXPECT_EQ(overwritten.num_ratings(), m.num_ratings());
  EXPECT_FLOAT_EQ(*overwritten.GetRating(0, 0), 1.0F);
  // Means are recomputed.
  EXPECT_NE(overwritten.UserMean(0), m.UserMean(0));
}

TEST(DenseMatrix, IndexingAndFill) {
  DenseMatrix d(2, 3, 1.5);
  EXPECT_DOUBLE_EQ(d(1, 2), 1.5);
  d(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(d(1, 2), 7.0);
  d.Fill(0.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 0.0);
}

TEST(DenseMatrix, RowSpanWritesThrough) {
  DenseMatrix d(2, 2);
  auto row = d.Row(1);
  row[0] = 3.0;
  EXPECT_DOUBLE_EQ(d(1, 0), 3.0);
}

TEST(DenseMatrix, FrobeniusDistance) {
  DenseMatrix a(1, 2);
  DenseMatrix b(1, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 5.0);
  DenseMatrix c(2, 1);
  EXPECT_THROW(a.FrobeniusDistance(c), util::ConfigError);
}

TEST(Stats, TableOneFields) {
  const auto m = SmallMatrix();
  const auto stats = ComputeStats(m);
  EXPECT_EQ(stats.num_users, 3u);
  EXPECT_EQ(stats.num_items, 4u);
  EXPECT_EQ(stats.num_ratings, 8u);
  EXPECT_NEAR(stats.avg_ratings_per_user, 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.density, 8.0 / 12.0, 1e-12);
  EXPECT_FLOAT_EQ(stats.min_rating, 1.0F);
  EXPECT_FLOAT_EQ(stats.max_rating, 5.0F);
  EXPECT_EQ(stats.num_distinct_rating_values, 5u);  // {1,2,3,4,5}
  EXPECT_EQ(stats.min_ratings_per_user, 2u);
  EXPECT_EQ(stats.max_ratings_per_user, 3u);
}

TEST(Stats, FormatMentionsEveryNumber) {
  const auto s = FormatStats(ComputeStats(SmallMatrix()));
  EXPECT_NE(s.find("No. of Users"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("Density"), std::string::npos);
}

}  // namespace
}  // namespace cfsf::matrix
