// Unit tests for cfsf::core — config validation, the offline artefacts,
// online prediction mechanics (Eqs. 10–14), caching, batching, top-N and
// incremental updates.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "core/cfsf.hpp"
#include "similarity/kernels.hpp"
#include "util/error.hpp"

namespace cfsf::core {
namespace {

data::EvalSplit SmallSplit(std::size_t given = 8) {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 150;
  config.min_ratings_per_user = 20;
  config.log_mean = 3.4;
  const auto base = data::GenerateSynthetic(config);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 80;
  pconfig.num_test_users = 40;
  pconfig.given_n = given;
  return data::MakeGivenNSplit(base, pconfig);
}

CfsfConfig SmallConfig() {
  CfsfConfig config;
  config.num_clusters = 8;
  config.top_m_items = 30;
  config.top_k_users = 10;
  return config;
}

// -------------------------------------------------------------- config ----

TEST(Config, PaperDefaults) {
  const CfsfConfig config;
  EXPECT_EQ(config.num_clusters, 30u);
  EXPECT_EQ(config.top_m_items, 95u);
  EXPECT_EQ(config.top_k_users, 25u);
  EXPECT_DOUBLE_EQ(config.lambda, 0.8);
  EXPECT_DOUBLE_EQ(config.delta, 0.1);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.35);
  config.Validate();
}

// Constructing the model with a bad config must throw ConfigError whose
// message names the offending field — the constructor is the one place
// validation runs, so this exercises every rejection branch through it.
void ExpectRejected(const CfsfConfig& config, const std::string& field) {
  try {
    CfsfModel model(config);
    FAIL() << "expected ConfigError naming " << field;
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name " << field << ": " << e.what();
  }
}

TEST(Config, EachRejectionBranchNamesTheField) {
  CfsfConfig config;
  config.num_clusters = 0;
  ExpectRejected(config, "num_clusters");

  config = CfsfConfig{};
  config.top_m_items = 0;
  ExpectRejected(config, "top_m_items");

  config = CfsfConfig{};
  config.top_k_users = 0;
  ExpectRejected(config, "top_k_users");

  config = CfsfConfig{};
  config.lambda = 1.5;
  ExpectRejected(config, "lambda");
  config.lambda = -0.1;
  ExpectRejected(config, "lambda");

  config = CfsfConfig{};
  config.delta = -0.1;
  ExpectRejected(config, "delta");
  config.delta = 1.1;
  ExpectRejected(config, "delta");

  config = CfsfConfig{};
  config.epsilon = 7.0;
  ExpectRejected(config, "epsilon");
  config.epsilon = -1.0;
  ExpectRejected(config, "epsilon");

  config = CfsfConfig{};
  config.candidate_pool_factor = 0;
  ExpectRejected(config, "candidate_pool_factor");

  config = CfsfConfig{};
  config.use_sir = config.use_sur = config.use_suir = false;
  ExpectRejected(config, "use_sir");

  config = CfsfConfig{};
  config.time_decay = true;
  config.time_half_life_days = 0.0;
  ExpectRejected(config, "time_half_life_days");
  config.time_half_life_days = -5.0;
  ExpectRejected(config, "time_half_life_days");
}

TEST(Config, OutOfRangeValueIsEchoedInTheMessage) {
  CfsfConfig config;
  config.lambda = 1.5;
  try {
    CfsfModel model(config);
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("1.5"), std::string::npos)
        << e.what();
  }
}

TEST(Config, ConstructorValidates) {
  CfsfConfig config;
  config.epsilon = 7.0;
  EXPECT_THROW(CfsfModel{config}, util::ConfigError);
}

// ------------------------------------------------------------- offline ----

TEST(Fit, BuildsAllArtifacts) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  EXPECT_FALSE(model.fitted());
  model.Fit(split.train);
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.gis().num_items(), split.train.num_items());
  EXPECT_EQ(model.cluster_model().num_clusters(), 8u);
  EXPECT_GT(model.gis().TotalNeighbors(), 0u);
}

TEST(Fit, EmptyMatrixThrows) {
  CfsfModel model;
  matrix::RatingMatrixBuilder b(0, 0);
  EXPECT_THROW(model.Fit(b.Build()), util::ConfigError);
}

TEST(Fit, PredictBeforeFitThrows) {
  CfsfModel model;
  EXPECT_THROW(model.Predict(0, 0), util::ConfigError);
  EXPECT_THROW(model.SelectTopKUsers(0), util::ConfigError);
  EXPECT_THROW(model.RecommendTopN(0, 5), util::ConfigError);
}

TEST(Fit, ClustersCapAtUserCount) {
  matrix::RatingMatrixBuilder b(3, 4);
  b.Add(0, 0, 5); b.Add(0, 1, 3);
  b.Add(1, 1, 4); b.Add(1, 2, 2);
  b.Add(2, 2, 1); b.Add(2, 3, 5);
  CfsfConfig config;
  config.num_clusters = 30;
  CfsfModel model(config);
  model.Fit(b.Build());
  EXPECT_LE(model.cluster_model().num_clusters(), 3u);
}

TEST(Fit, RefitReplacesState) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const double before = model.Predict(split.test[0].user, split.test[0].item);
  model.Fit(split.train);  // same data → same result
  EXPECT_DOUBLE_EQ(model.Predict(split.test[0].user, split.test[0].item),
                   before);
}

// ------------------------------------------------------ user selection ----

TEST(Selection, TopKRespectsKAndExcludesSelf) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  for (const auto user : {split.active_users[0], split.active_users[5]}) {
    const auto selected = model.SelectTopKUsers(user);
    EXPECT_LE(selected.size(), 10u);
    EXPECT_GE(selected.size(), 1u);
    for (const auto& s : selected) {
      EXPECT_NE(s.user, user);
      EXPECT_GT(s.similarity, 0.0);
    }
    for (std::size_t k = 1; k < selected.size(); ++k) {
      EXPECT_GE(selected[k - 1].similarity, selected[k].similarity);
    }
  }
}

TEST(Selection, SimilaritiesMatchEq10) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto user = split.active_users[0];
  const auto selected = model.SelectTopKUsers(user);
  ASSERT_FALSE(selected.empty());
  const auto& cm = model.cluster_model();
  for (const auto& s : selected) {
    const double expected = sim::SmoothingAwarePcc(
        split.train.UserRow(user), split.train.UserMean(user),
        cm.SmoothedProfile(s.user), cm.OriginalMask(s.user),
        cm.UserMean(s.user), model.config().epsilon);
    EXPECT_NEAR(s.similarity, expected, 1e-12);
  }
}

TEST(Selection, DistinctUsers) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto selected = model.SelectTopKUsers(split.active_users[0]);
  std::set<matrix::UserId> unique;
  for (const auto& s : selected) unique.insert(s.user);
  EXPECT_EQ(unique.size(), selected.size());
}

// ------------------------------------------------------------- predict ----

TEST(Predict, FiniteForEveryQuery) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  for (const auto& t : split.test) {
    const double v = model.Predict(t.user, t.item);
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_GT(v, -5.0);
    EXPECT_LT(v, 15.0);
  }
}

TEST(Predict, OutOfRangeThrows) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  EXPECT_THROW(model.Predict(100000, 0), util::ConfigError);
  EXPECT_THROW(model.Predict(0, 100000), util::ConfigError);
}

TEST(Predict, DetailedBreakdownFusesPerEq14) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto& config = model.config();
  std::size_t checked = 0;
  for (const auto& t : split.test) {
    const auto parts = model.PredictDetailed(t.user, t.item);
    if (!(parts.sir && parts.sur && parts.suir)) continue;
    const double expected = (1.0 - config.delta) * (1.0 - config.lambda) * *parts.sir +
                            (1.0 - config.delta) * config.lambda * *parts.sur +
                            config.delta * *parts.suir;
    EXPECT_NEAR(parts.fused, expected, 1e-9);
    if (++checked == 25) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Predict, FallsBackToUserMeanWithNoEvidence) {
  // A matrix where the GIS is empty (no co-rated pairs) and nobody else
  // shares the active user's items.
  matrix::RatingMatrixBuilder b(3, 3);
  b.Add(0, 0, 5);
  b.Add(1, 1, 3);
  b.Add(2, 2, 1);
  CfsfConfig config;
  config.num_clusters = 2;
  config.top_m_items = 3;
  config.top_k_users = 2;
  CfsfModel model(config);
  model.Fit(b.Build());
  const double v = model.Predict(0, 1);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(Predict, AblationSwitchesChangeComponents) {
  const auto split = SmallSplit();
  CfsfConfig config = SmallConfig();
  config.use_sir = false;
  config.use_suir = false;
  CfsfModel sur_only(config);
  sur_only.Fit(split.train);
  const auto parts = sur_only.PredictDetailed(split.test[0].user,
                                              split.test[0].item);
  EXPECT_FALSE(parts.sir.has_value());
  EXPECT_FALSE(parts.suir.has_value());
  EXPECT_TRUE(parts.sur.has_value());
  EXPECT_DOUBLE_EQ(parts.fused, *parts.sur);  // renormalised to SUR' alone
}

TEST(Predict, SmoothedDataFlagsChangeEstimates) {
  const auto split = SmallSplit();
  CfsfConfig plain = SmallConfig();
  CfsfConfig alt = SmallConfig();
  alt.local_matrix_smoothed = true;
  alt.sur_uses_smoothed = false;
  CfsfModel a(plain);
  a.Fit(split.train);
  CfsfModel b(alt);
  b.Fit(split.train);
  bool any_diff = false;
  for (std::size_t k = 0; k < 30 && k < split.test.size(); ++k) {
    if (std::abs(a.Predict(split.test[k].user, split.test[k].item) -
                 b.Predict(split.test[k].user, split.test[k].item)) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Predict, CenterOnItemMeansChangesEstimates) {
  const auto split = SmallSplit();
  CfsfConfig centered = SmallConfig();
  CfsfConfig verbatim = SmallConfig();
  verbatim.center_on_item_means = false;
  CfsfModel a(centered);
  a.Fit(split.train);
  CfsfModel b(verbatim);
  b.Fit(split.train);
  bool any_diff = false;
  for (std::size_t k = 0; k < 20 && k < split.test.size(); ++k) {
    if (std::abs(a.Predict(split.test[k].user, split.test[k].item) -
                 b.Predict(split.test[k].user, split.test[k].item)) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Predict, EpsilonAffectsPredictions) {
  const auto split = SmallSplit();
  CfsfConfig lo = SmallConfig();
  lo.epsilon = 0.05;
  CfsfConfig hi = SmallConfig();
  hi.epsilon = 0.95;
  CfsfModel a(lo);
  a.Fit(split.train);
  CfsfModel b(hi);
  b.Fit(split.train);
  bool any_diff = false;
  for (std::size_t k = 0; k < 20 && k < split.test.size(); ++k) {
    if (std::abs(a.Predict(split.test[k].user, split.test[k].item) -
                 b.Predict(split.test[k].user, split.test[k].item)) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// --------------------------------------------------------------- cache ----

TEST(Cache, GrowsAndClears) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  EXPECT_EQ(model.CacheSize(), 0u);
  model.Predict(split.test[0].user, split.test[0].item);
  EXPECT_EQ(model.CacheSize(), 1u);
  model.Predict(split.test[0].user, split.test[0].item);
  EXPECT_EQ(model.CacheSize(), 1u);  // same user, no growth
  model.ClearCache();
  EXPECT_EQ(model.CacheSize(), 0u);
}

TEST(Cache, DisabledCacheStaysEmpty) {
  const auto split = SmallSplit();
  CfsfConfig config = SmallConfig();
  config.use_cache = false;
  CfsfModel model(config);
  model.Fit(split.train);
  model.Predict(split.test[0].user, split.test[0].item);
  EXPECT_EQ(model.CacheSize(), 0u);
}

TEST(Cache, CachedAndUncachedAgree) {
  const auto split = SmallSplit();
  CfsfConfig cached = SmallConfig();
  CfsfConfig uncached = SmallConfig();
  uncached.use_cache = false;
  CfsfModel a(cached);
  a.Fit(split.train);
  CfsfModel b(uncached);
  b.Fit(split.train);
  for (std::size_t k = 0; k < 30 && k < split.test.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.Predict(split.test[k].user, split.test[k].item),
                     b.Predict(split.test[k].user, split.test[k].item));
  }
}

// --------------------------------------------------------------- batch ----

TEST(Batch, MatchesPointwisePredictions) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
  for (const auto& t : split.test) queries.emplace_back(t.user, t.item);
  const auto batch = model.PredictBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    EXPECT_DOUBLE_EQ(batch[k],
                     model.Predict(queries[k].first, queries[k].second));
  }
}

TEST(Batch, EmptyQueriesOk) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  EXPECT_TRUE(model.PredictBatch({}).empty());
}

// --------------------------------------------------------------- top-N ----

TEST(TopN, ExcludesRatedAndSortsDescending) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto user = split.active_users[0];
  const auto recs = model.RecommendTopN(user, 10);
  ASSERT_EQ(recs.size(), 10u);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_FALSE(split.train.HasRating(user, recs[k].item));
    if (k > 0) {
      EXPECT_GE(recs[k - 1].score, recs[k].score);
    }
  }
}

TEST(TopN, RequestingMoreThanAvailableTruncates) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto user = split.active_users[0];
  const std::size_t unrated =
      split.train.num_items() - split.train.UserRatingCount(user);
  const auto recs = model.RecommendTopN(user, 100000);
  EXPECT_EQ(recs.size(), unrated);
}

TEST(TopN, ScoresMatchPredict) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto user = split.active_users[1];
  for (const auto& rec : model.RecommendTopN(user, 5)) {
    EXPECT_DOUBLE_EQ(rec.score, model.Predict(user, rec.item));
  }
}

// --------------------------------------------------------- incremental ----

TEST(Incremental, InsertChangesPredictionTowardEvidence) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto& probe = split.test[0];
  // Feed the model the actual rating itself; afterwards the user's own
  // rating exists, so SIR'/SUR' see it as original data.
  model.InsertRating(probe.user, probe.item, probe.actual);
  EXPECT_FLOAT_EQ(*model.train().GetRating(probe.user, probe.item),
                  probe.actual);
}

TEST(Incremental, CacheInvalidated) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  model.Predict(split.test[0].user, split.test[0].item);
  EXPECT_GT(model.CacheSize(), 0u);
  model.InsertRating(split.test[0].user, split.test[0].item, 4.0F);
  EXPECT_EQ(model.CacheSize(), 0u);
}

TEST(Incremental, GisRowMatchesRebuild) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  const auto& probe = split.test[0];
  model.InsertRating(probe.user, probe.item, 5.0F);

  CfsfModel rebuilt(SmallConfig());
  rebuilt.Fit(model.train());
  const auto a = model.gis().Neighbors(probe.item);
  const auto b = rebuilt.gis().Neighbors(probe.item);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].index, b[k].index);
    EXPECT_NEAR(a[k].similarity, b[k].similarity, 1e-5);
  }
}

TEST(Incremental, RejectsBadIds) {
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);
  EXPECT_THROW(model.InsertRating(100000, 0, 3.0F), util::ConfigError);
}

// ---------------------------------------------------------- time decay ----

TEST(TimeDecay, ChangesPredictionsOnTimestampedData) {
  const auto split = SmallSplit();
  ASSERT_TRUE(split.train.has_timestamps());
  CfsfConfig plain = SmallConfig();
  CfsfConfig decayed = SmallConfig();
  decayed.time_decay = true;
  decayed.time_half_life_days = 30.0;
  CfsfModel a(plain);
  a.Fit(split.train);
  CfsfModel b(decayed);
  b.Fit(split.train);
  bool any_diff = false;
  for (std::size_t k = 0; k < 50 && k < split.test.size(); ++k) {
    if (std::abs(a.Predict(split.test[k].user, split.test[k].item) -
                 b.Predict(split.test[k].user, split.test[k].item)) > 1e-12) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(TimeDecay, NoopWithoutTimestamps) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 60;
  dconfig.num_items = 80;
  dconfig.min_ratings_per_user = 12;
  dconfig.log_mean = 3.0;
  dconfig.with_timestamps = false;
  const auto base = data::GenerateSynthetic(dconfig);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 40;
  pconfig.num_test_users = 20;
  pconfig.given_n = 5;
  const auto split = data::MakeGivenNSplit(base, pconfig);
  CfsfConfig plain = SmallConfig();
  CfsfConfig decayed = SmallConfig();
  decayed.time_decay = true;
  CfsfModel a(plain);
  a.Fit(split.train);
  CfsfModel b(decayed);
  b.Fit(split.train);
  for (std::size_t k = 0; k < 20 && k < split.test.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.Predict(split.test[k].user, split.test[k].item),
                     b.Predict(split.test[k].user, split.test[k].item));
  }
}

// ------------------------------------------------------------ parallel ----

TEST(Parallelism, ConcurrentPredictsAreSafeAndConsistent) {
  // A fitted model is shared by concurrent request threads in a serving
  // process; Predict is const and the neighbour cache is mutex-guarded.
  const auto split = SmallSplit();
  CfsfModel model(SmallConfig());
  model.Fit(split.train);

  // Serial reference.
  std::vector<double> expected(split.test.size());
  for (std::size_t k = 0; k < split.test.size(); ++k) {
    expected[k] = model.Predict(split.test[k].user, split.test[k].item);
  }
  model.ClearCache();

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> results(kThreads,
                                           std::vector<double>(split.test.size()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t k = 0; k < split.test.size(); ++k) {
        results[t][k] = model.Predict(split.test[k].user, split.test[k].item);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t k = 0; k < split.test.size(); ++k) {
      ASSERT_DOUBLE_EQ(results[t][k], expected[k])
          << "thread " << t << " query " << k;
    }
  }
}

TEST(Parallelism, SerialAndParallelFitsAgree) {
  const auto split = SmallSplit();
  CfsfConfig serial = SmallConfig();
  serial.parallel = false;
  CfsfConfig parallel = SmallConfig();
  CfsfModel a(serial);
  a.Fit(split.train);
  CfsfModel b(parallel);
  b.Fit(split.train);
  for (std::size_t k = 0; k < 50 && k < split.test.size(); ++k) {
    EXPECT_NEAR(a.Predict(split.test[k].user, split.test[k].item),
                b.Predict(split.test[k].user, split.test[k].item), 1e-6);
  }
}

}  // namespace
}  // namespace cfsf::core
