// Unit tests for cfsf::eval — metrics (Eq. 15) and the evaluation driver.
#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <utility>
#include <vector>

#include "baselines/means.hpp"
#include "core/cfsf_model.hpp"
#include "data/protocol.hpp"
#include "data/synthetic.hpp"
#include "eval/evaluate.hpp"
#include "eval/metrics.hpp"
#include "util/error.hpp"

namespace cfsf::eval {
namespace {

TEST(Metrics, MaeByHand) {
  const std::vector<double> predicted{3.0, 4.0, 1.0};
  const std::vector<double> actual{4.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(Mae(predicted, actual), (1.0 + 0.0 + 2.0) / 3.0);
}

TEST(Metrics, RmseByHand) {
  const std::vector<double> predicted{3.0, 5.0};
  const std::vector<double> actual{4.0, 3.0};
  EXPECT_DOUBLE_EQ(Rmse(predicted, actual), std::sqrt((1.0 + 4.0) / 2.0));
}

TEST(Metrics, RmseDominatesMae) {
  // RMSE >= MAE always (Jensen).
  const std::vector<double> predicted{1.0, 2.0, 5.0, 3.3};
  const std::vector<double> actual{2.0, 2.0, 1.0, 3.0};
  EXPECT_GE(Rmse(predicted, actual), Mae(predicted, actual));
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(Mae(a, b), util::ConfigError);
  EXPECT_THROW(Rmse(a, b), util::ConfigError);
}

TEST(Metrics, AccumulatorEmptyIsZero) {
  ErrorAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mae(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), 0.0);
}

TEST(Metrics, AccumulatorMatchesBatch) {
  ErrorAccumulator acc;
  const std::vector<double> predicted{3.1, 4.2, 0.9, 2.5};
  const std::vector<double> actual{3.0, 4.0, 2.0, 2.0};
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc.Add(predicted[i], actual[i]);
  }
  EXPECT_DOUBLE_EQ(acc.Mae(), Mae(predicted, actual));
  EXPECT_DOUBLE_EQ(acc.Rmse(), Rmse(predicted, actual));
  EXPECT_EQ(acc.count(), 4u);
}

TEST(Metrics, ErrorIsSymmetric) {
  ErrorAccumulator over;
  over.Add(5.0, 3.0);
  ErrorAccumulator under;
  under.Add(1.0, 3.0);
  EXPECT_DOUBLE_EQ(over.Mae(), under.Mae());
}

class ConstantPredictor : public Predictor {
 public:
  explicit ConstantPredictor(double value) : value_(value) {}
  std::string Name() const override { return "Constant"; }
  void Fit(const matrix::RatingMatrix&) override { fitted_ = true; }
  double Predict(matrix::UserId, matrix::ItemId) const override {
    return value_;
  }
  bool fitted_ = false;

 private:
  double value_;
};

data::EvalSplit SmallSplit() {
  data::SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.min_ratings_per_user = 10;
  config.log_mean = 3.0;
  const auto base = data::GenerateSynthetic(config);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 25;
  pconfig.num_test_users = 15;
  pconfig.given_n = 5;
  return data::MakeGivenNSplit(base, pconfig);
}

TEST(Evaluate, FitsThenScores) {
  const auto split = SmallSplit();
  ConstantPredictor predictor(3.5);
  const auto result = Evaluate(predictor, split);
  EXPECT_TRUE(predictor.fitted_);
  EXPECT_EQ(result.num_predictions, split.test.size());
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GE(result.rmse, result.mae);
  EXPECT_GE(result.fit_seconds, 0.0);
  EXPECT_GE(result.predict_seconds, 0.0);
}

TEST(Evaluate, ClampingImprovesWildPredictions) {
  const auto split = SmallSplit();
  ConstantPredictor wild(42.0);
  EvalOptions clamped;  // default [1,5]
  const auto with_clamp = Evaluate(wild, split, clamped);
  EvalOptions open;
  open.clamp_low = 1.0;
  open.clamp_high = 0.0;  // low > high disables clamping
  const auto without = Evaluate(wild, split, open);
  EXPECT_LT(with_clamp.mae, without.mae);
  EXPECT_LE(with_clamp.mae, 4.0);   // clamped to 5, actuals in [1,5]
  EXPECT_GT(without.mae, 35.0);
}

TEST(Evaluate, GlobalMeanBeatsArbitraryConstant) {
  const auto split = SmallSplit();
  baselines::GlobalMeanPredictor mean;
  ConstantPredictor low(1.0);
  EXPECT_LT(Evaluate(mean, split).mae, Evaluate(low, split).mae);
}

TEST(EvaluateFitted, MatchesEvaluate) {
  const auto split = SmallSplit();
  ConstantPredictor predictor(3.0);
  const auto full = Evaluate(predictor, split);
  const auto fitted_only = EvaluateFitted(predictor, split.test);
  EXPECT_DOUBLE_EQ(full.mae, fitted_only.mae);
  EXPECT_DOUBLE_EQ(full.rmse, fitted_only.rmse);
  EXPECT_DOUBLE_EQ(fitted_only.fit_seconds, 0.0);
}

TEST(EvaluateFitted, EmptyTestSetIsZero) {
  ConstantPredictor predictor(3.0);
  const std::vector<data::TestRating> empty;
  const auto result = EvaluateFitted(predictor, empty);
  EXPECT_EQ(result.num_predictions, 0u);
  EXPECT_DOUBLE_EQ(result.mae, 0.0);
}

// The batch API contract: PredictBatch must be positionally aligned with
// its queries and agree with per-query Predict — for the default
// implementation (baselines) and for CFSF's parallel override alike.
// Since eval::Evaluate scores everything through PredictBatch, this is
// what keeps every reported MAE identical to the per-query path.
TEST(PredictBatch, AgreesWithPerQueryPredict) {
  const auto split = SmallSplit();

  core::CfsfConfig config;
  config.num_clusters = 6;
  config.top_m_items = 20;
  config.top_k_users = 8;
  core::CfsfModel cfsf(config);
  baselines::GlobalMeanPredictor mean;

  for (Predictor* predictor :
       std::initializer_list<Predictor*>{&cfsf, &mean}) {
    predictor->Fit(split.train);
    std::vector<std::pair<matrix::UserId, matrix::ItemId>> queries;
    for (const auto& t : split.test) queries.emplace_back(t.user, t.item);

    const auto batch = predictor->PredictBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[i],
                       predictor->Predict(queries[i].first,
                                          queries[i].second))
          << predictor->Name() << " query " << i;
    }
  }
}

}  // namespace
}  // namespace cfsf::eval
