// Parameterised cross-method property suite: every predictor in the
// repository — CFSF and all baselines — must satisfy the same behavioural
// contract on every dataset seed: totality (finite predictions for every
// query), determinism (same fit → same predictions), sanity (clamped MAE
// beats the worst-constant floor), and robustness to degenerate matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "baselines/aspect_model.hpp"
#include "baselines/emdp.hpp"
#include "baselines/means.hpp"
#include "baselines/mf.hpp"
#include "baselines/pd.hpp"
#include "baselines/scbpcc.hpp"
#include "baselines/sf.hpp"
#include "baselines/sir.hpp"
#include "baselines/slope_one.hpp"
#include "baselines/sur.hpp"
#include "core/cfsf.hpp"
#include "eval/evaluate.hpp"

namespace cfsf {
namespace {

using Factory = std::function<std::unique_ptr<eval::Predictor>()>;

struct MethodCase {
  std::string name;
  Factory make;
};

std::vector<MethodCase> AllMethods() {
  // Downsized configs keep the whole suite fast on one core.
  return {
      {"CFSF",
       [] {
         core::CfsfConfig c;
         c.num_clusters = 6;
         c.top_m_items = 20;
         c.top_k_users = 8;
         return std::make_unique<core::CfsfModel>(c);
       }},
      {"SUR", [] { return std::make_unique<baselines::SurPredictor>(); }},
      {"SIR", [] { return std::make_unique<baselines::SirPredictor>(); }},
      {"SF", [] { return std::make_unique<baselines::SfPredictor>(); }},
      {"SCBPCC",
       [] {
         baselines::ScbpccConfig c;
         c.num_clusters = 6;
         return std::make_unique<baselines::ScbpccPredictor>(c);
       }},
      {"EMDP", [] { return std::make_unique<baselines::EmdpPredictor>(); }},
      {"PD", [] { return std::make_unique<baselines::PdPredictor>(); }},
      {"AM",
       [] {
         baselines::AspectModelConfig c;
         c.num_aspects = 4;
         c.em_iterations = 8;
         return std::make_unique<baselines::AspectModelPredictor>(c);
       }},
      {"SlopeOne", [] { return std::make_unique<baselines::SlopeOnePredictor>(); }},
      {"MF",
       [] {
         baselines::MfConfig c;
         c.epochs = 10;
         return std::make_unique<baselines::MfPredictor>(c);
       }},
      {"UserMean", [] { return std::make_unique<baselines::UserMeanPredictor>(); }},
      {"ItemMean", [] { return std::make_unique<baselines::ItemMeanPredictor>(); }},
      {"GlobalMean",
       [] { return std::make_unique<baselines::GlobalMeanPredictor>(); }},
  };
}

data::EvalSplit WorldSplit(std::uint64_t seed) {
  data::SyntheticConfig config;
  config.num_users = 70;
  config.num_items = 90;
  config.min_ratings_per_user = 12;
  config.log_mean = 3.1;
  config.seed = seed;
  const auto base = data::GenerateSynthetic(config);
  data::ProtocolConfig pconfig;
  pconfig.num_train_users = 45;
  pconfig.num_test_users = 25;
  pconfig.given_n = 6;
  return data::MakeGivenNSplit(base, pconfig);
}

class PredictorContract
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  MethodCase Method() const { return AllMethods()[std::get<0>(GetParam())]; }
  std::uint64_t Seed() const { return std::get<1>(GetParam()); }
};

TEST_P(PredictorContract, TotalAndFinite) {
  const auto split = WorldSplit(Seed());
  auto predictor = Method().make();
  predictor->Fit(split.train);
  for (const auto& t : split.test) {
    const double v = predictor->Predict(t.user, t.item);
    ASSERT_TRUE(std::isfinite(v))
        << Method().name << " user " << t.user << " item " << t.item;
  }
}

TEST_P(PredictorContract, Deterministic) {
  const auto split = WorldSplit(Seed());
  auto a = Method().make();
  auto b = Method().make();
  a->Fit(split.train);
  b->Fit(split.train);
  for (std::size_t k = 0; k < 20 && k < split.test.size(); ++k) {
    EXPECT_DOUBLE_EQ(a->Predict(split.test[k].user, split.test[k].item),
                     b->Predict(split.test[k].user, split.test[k].item))
        << Method().name;
  }
}

TEST_P(PredictorContract, BeatsWorstConstant) {
  // Even the trivial means beat "always predict 1" on 1-5 star data.
  const auto split = WorldSplit(Seed());
  auto predictor = Method().make();
  const double mae = eval::Evaluate(*predictor, split).mae;
  eval::ErrorAccumulator worst;
  for (const auto& t : split.test) worst.Add(1.0, t.actual);
  EXPECT_LT(mae, worst.Mae()) << Method().name;
}

TEST_P(PredictorContract, SurvivesSingleUserMatrix) {
  matrix::RatingMatrixBuilder b(1, 3);
  b.Add(0, 0, 4);
  b.Add(0, 2, 2);
  const auto m = b.Build();
  auto predictor = Method().make();
  // CFSF/SCBPCC cap their cluster count at the user count; every method
  // must fit and produce finite predictions.
  predictor->Fit(m);
  for (matrix::ItemId i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(predictor->Predict(0, i)))
        << Method().name << " item " << i;
  }
}

TEST_P(PredictorContract, ConstantMatrixPredictsTheConstant) {
  // Degenerate world: everyone rates everything 3.  Zero variance kills
  // every similarity; all fallback chains must bottom out at the mean.
  matrix::RatingMatrixBuilder b(8, 6);
  for (matrix::UserId u = 0; u < 8; ++u) {
    for (matrix::ItemId i = 0; i < 6; ++i) b.Add(u, i, 3.0F);
  }
  const auto m = b.Build();
  auto predictor = Method().make();
  predictor->Fit(m);
  for (matrix::UserId u = 0; u < 8; ++u) {
    for (matrix::ItemId i = 0; i < 6; ++i) {
      EXPECT_NEAR(predictor->Predict(u, i), 3.0, 0.35) << Method().name;
    }
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>&
        info) {
  return AllMethods()[std::get<0>(info.param)].name + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PredictorContract,
    ::testing::Combine(::testing::Range<std::size_t>(0, 13),
                       ::testing::Values<std::uint64_t>(3, 41)),
    CaseName);

}  // namespace
}  // namespace cfsf
