// Unit tests for cfsf::obs — counters, gauges, histograms, the registry,
// the JSON writer/validator and the phase profiler.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace cfsf::obs {
namespace {

// ------------------------------------------------------------- Counter ----

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Counter, SumsAcrossThreadShards) {
  // Each thread lands in some shard; Value() must see every shard.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --------------------------------------------------------------- Gauge ----

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.Value(), 4.0);
  gauge.Add(-5.0);
  EXPECT_EQ(gauge.Value(), -1.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

// ----------------------------------------------------------- Histogram ----

TEST(Histogram, RejectsBadBounds) {
  const std::vector<double> empty;
  EXPECT_THROW(Histogram{std::span<const double>(empty)}, util::ConfigError);
  const std::vector<double> unsorted = {1.0, 1.0, 2.0};
  EXPECT_THROW(Histogram{std::span<const double>(unsorted)},
               util::ConfigError);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  const std::vector<double> bounds = {1.0, 2.0, 5.0};
  Histogram hist{std::span<const double>(bounds)};
  hist.Record(0.5);   // <= 1  -> bucket 0
  hist.Record(1.0);   // == bound: still bucket 0 ("le" semantics)
  hist.Record(1.5);   // bucket 1
  hist.Record(5.0);   // bucket 2
  hist.Record(7.0);   // overflow
  const auto counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.5 + 1.0 + 1.5 + 5.0 + 7.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), hist.Sum() / 5.0);
}

TEST(Histogram, PercentilesOnKnownData) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0, 40.0};
  Histogram hist{std::span<const double>(bounds)};
  // 100 values uniformly in bucket 0, 100 in bucket 1.
  for (int i = 0; i < 100; ++i) hist.Record(5.0);
  for (int i = 0; i < 100; ++i) hist.Record(15.0);
  EXPECT_EQ(hist.Percentile(0.0), 0.0);
  // p50 sits at the edge between the two buckets.
  EXPECT_NEAR(hist.Percentile(50.0), 10.0, 1e-9);
  // p75 is halfway through the second bucket (10, 20].
  EXPECT_NEAR(hist.Percentile(75.0), 15.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(100.0), 20.0, 1e-9);
}

TEST(Histogram, OverflowPercentileReportsLargestBound) {
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram hist{std::span<const double>(bounds)};
  for (int i = 0; i < 10; ++i) hist.Record(100.0);
  EXPECT_EQ(hist.Percentile(99.0), 2.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  const std::vector<double> bounds = {1.0};
  Histogram hist{std::span<const double>(bounds)};
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram hist{std::span<const double>(bounds)};
  hist.Record(0.5);
  hist.Record(3.0);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0.0);
  for (const auto count : hist.BucketCounts()) EXPECT_EQ(count, 0u);
}

TEST(BucketLadders, AreStrictlyIncreasing) {
  for (const auto bounds : {LatencyBucketsUs(), SizeBuckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

// ------------------------------------------------------ MetricsRegistry ----

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("x.latency", LatencyBucketsUs());
  Histogram& h2 = registry.GetHistogram("x.latency", SizeBuckets());
  EXPECT_EQ(&h1, &h2);  // bounds consulted only on first registration
}

TEST(MetricsRegistry, KindCollisionThrows) {
  MetricsRegistry registry;
  registry.GetCounter("name");
  EXPECT_THROW(registry.GetGauge("name"), util::ConfigError);
  EXPECT_THROW(registry.GetHistogram("name", SizeBuckets()),
               util::ConfigError);
  registry.GetGauge("gauge_name");
  EXPECT_THROW(registry.GetCounter("gauge_name"), util::ConfigError);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  counter.Increment(5);
  registry.GetGauge("g").Set(3.0);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(registry.GetGauge("g").Value(), 0.0);
  EXPECT_EQ(&registry.GetCounter("c"), &counter);
}

TEST(MetricsRegistry, SnapshotIsValidJson) {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Increment(3);
  registry.GetGauge("b.gauge").Set(1.25);
  auto& hist = registry.GetHistogram("c.latency", LatencyBucketsUs());
  hist.Record(4.0);
  std::string error;
  EXPECT_TRUE(ValidateJson(registry.ToJson(), &error)) << error;
  EXPECT_NE(registry.ToJson().find("\"p95\""), std::string::npos);
}

TEST(MetricsRegistry, SnapshotIsDeterministic) {
  // Two registries in the same state serialise byte-identically,
  // regardless of registration order (keys are sorted).
  MetricsRegistry first;
  first.GetCounter("z.count").Increment(2);
  first.GetCounter("a.count").Increment(1);
  first.GetGauge("m.gauge").Set(0.5);

  MetricsRegistry second;
  second.GetGauge("m.gauge").Set(0.5);
  second.GetCounter("a.count").Increment(1);
  second.GetCounter("z.count").Increment(2);

  EXPECT_EQ(first.ToJson(), second.ToJson());
}

TEST(MetricsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// ------------------------------------------------------------ JsonWriter ----

TEST(JsonWriter, WritesNestedContainers) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("list");
  writer.BeginArray();
  writer.Int(-1);
  writer.Uint(2);
  writer.Bool(true);
  writer.Null();
  writer.EndArray();
  writer.Key("nested");
  writer.BeginObject();
  writer.Key("d");
  writer.Double(0.5);
  writer.EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(),
            R"({"list":[-1,2,true,null],"nested":{"d":0.5}})");
  EXPECT_TRUE(ValidateJson(writer.str()));
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter writer;
  writer.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(writer.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  EXPECT_TRUE(ValidateJson(writer.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Double(std::nan(""));
  writer.Double(INFINITY);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[null,null]");
}

// ----------------------------------------------------------- ValidateJson ----

TEST(ValidateJson, AcceptsWellFormedDocuments) {
  for (const std::string text :
       {R"({})", R"([])", R"(null)", R"(true)", R"(-12.5e3)",
        R"("escaped \" \\ é")", R"({"a":[1,2,{"b":null}],"c":false})"}) {
    std::string error;
    EXPECT_TRUE(ValidateJson(text, &error)) << text << ": " << error;
  }
}

TEST(ValidateJson, RejectsMalformedDocuments) {
  for (const std::string text :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "01", "1 2", "nul",
        "\"unterminated", "{\"a\":1,}", "[1 2]", "+1", "NaN"}) {
    EXPECT_FALSE(ValidateJson(text)) << "accepted: " << text;
  }
}

// --------------------------------------------------------- PhaseProfiler ----

TEST(PhaseProfiler, RecordsPhasesInOrder) {
  PhaseProfiler profiler;
  profiler.Begin("first");
  profiler.Begin("second");  // implicitly ends "first"
  profiler.End();
  profiler.End();  // no-op: nothing running
  ASSERT_EQ(profiler.phases().size(), 2u);
  EXPECT_EQ(profiler.phases()[0].name, "first");
  EXPECT_EQ(profiler.phases()[1].name, "second");
  for (const auto& phase : profiler.phases()) {
    EXPECT_GE(phase.seconds, 0.0);
  }
  EXPECT_NEAR(profiler.TotalSeconds(),
              profiler.phases()[0].seconds + profiler.phases()[1].seconds,
              1e-12);
}

TEST(PhaseProfiler, CommitWritesGauges) {
  PhaseProfiler profiler;
  profiler.Begin("stage");
  profiler.End();
  MetricsRegistry registry;
  profiler.CommitTo(registry, "test.fit");
  EXPECT_GE(registry.GetGauge("test.fit.stage_seconds").Value(), 0.0);
  EXPECT_GE(registry.GetGauge("test.fit.total_seconds").Value(), 0.0);
}

// ------------------------------------------------------------ ScopedTimer ----

TEST(ScopedTimer, RecordsOnceOnScopeExit) {
  const std::vector<double> bounds = {1e6};
  Histogram hist{std::span<const double>(bounds)};
  {
    ScopedTimer timer(hist);
  }
  if constexpr (MetricsEnabled()) {
    EXPECT_EQ(hist.Count(), 1u);
    EXPECT_GE(hist.Sum(), 0.0);
  } else {
    EXPECT_EQ(hist.Count(), 0u);
  }
}

}  // namespace
}  // namespace cfsf::obs
