// Tests for the correctness-tooling layer: the CFSF_CHECK macro family
// (util/check.hpp) and the DebugValidate() sweeps on the core data
// structures.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "clustering/kmeans.hpp"
#include "clustering/smoothing.hpp"
#include "core/cfsf_model.hpp"
#include "data/synthetic.hpp"
#include "matrix/rating_matrix.hpp"
#include "similarity/item_similarity.hpp"
#include "util/check.hpp"

namespace cfsf {
namespace {

data::SyntheticConfig SmallWorld() {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.min_ratings_per_user = 10;
  config.max_ratings_per_user = 40;
  config.log_mean = 3.0;
  return config;
}

// --- CFSF_VALIDATE / InvariantError (always compiled in) ----------------

TEST(Validate, PassesOnTrueCondition) {
  EXPECT_NO_THROW(CFSF_VALIDATE(1 + 1 == 2, "arithmetic"));
}

TEST(Validate, ThrowsInvariantErrorWithContext) {
  try {
    CFSF_VALIDATE(1 + 1 == 3, "the message");
    FAIL() << "CFSF_VALIDATE did not throw";
  } catch (const util::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("the message"), std::string::npos) << what;
  }
}

TEST(Validate, InvariantErrorIsACfsfError) {
  EXPECT_THROW(CFSF_VALIDATE(false, "x"), util::Error);
}

// --- CFSF_CHECK family (active only under CFSF_ENABLE_CHECKS) -----------

TEST(Check, PassingChecksAreSilent) {
  CFSF_CHECK(true, "never fires");
  CFSF_CHECK_FINITE(1.5, "finite");
  CFSF_DCHECK(true, "never fires");
}

TEST(Check, ChecksEnabledMatchesBuildFlag) {
#if defined(CFSF_ENABLE_CHECKS)
  EXPECT_TRUE(util::ChecksEnabled());
#else
  EXPECT_FALSE(util::ChecksEnabled());
#endif
}

TEST(Check, DisabledChecksDoNotEvaluateTheCondition) {
  // In checks-off builds the condition must never run; in checks-on
  // builds it runs but passes.  Either way `calls` tells a consistent
  // story with ChecksEnabled().
  int calls = 0;
  auto count = [&calls] {
    ++calls;
    return true;
  };
  CFSF_CHECK(count(), "side-effect probe");
  EXPECT_EQ(calls, util::ChecksEnabled() ? 1 : 0);
}

// Death tests re-execute the binary, which misbehaves under TSan's
// runtime; the sanitizer tiers exercise the passing paths instead.
#if defined(CFSF_ENABLE_CHECKS) && !defined(__SANITIZE_THREAD__)
TEST(CheckDeath, FailedCheckAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CFSF_CHECK(1 > 2, "impossible ordering"),
               "CFSF_CHECK failed.*1 > 2.*impossible ordering");
}

TEST(CheckDeath, NonFiniteValueAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const double bad = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(CFSF_CHECK_FINITE(bad, "smoothed rating"), "smoothed rating");
}
#endif

// --- RatingMatrix::DebugValidate ----------------------------------------

TEST(RatingMatrixValidate, FreshlyBuiltMatrixPasses) {
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  EXPECT_NO_THROW(matrix.DebugValidate());
}

TEST(RatingMatrixValidate, EmptyMatrixPasses) {
  matrix::RatingMatrixBuilder builder(5, 7);
  const auto matrix = builder.Build();
  EXPECT_NO_THROW(matrix.DebugValidate());
}

TEST(RatingMatrixValidate, SurvivesInsertionAndPrefix) {
  const auto base = data::GenerateSynthetic(SmallWorld());
  EXPECT_NO_THROW(base.WithRating(3, 9, 4.0F).DebugValidate());
  EXPECT_NO_THROW(base.KeepUserPrefix(20).DebugValidate());
}

// --- GlobalItemSimilarity::DebugValidate --------------------------------

TEST(GisValidate, FreshlyBuiltGisPasses) {
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  const auto gis = sim::GlobalItemSimilarity::Build(matrix);
  EXPECT_NO_THROW(gis.DebugValidate());
}

TEST(GisValidate, SurvivesRefreshItems) {
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  auto gis = sim::GlobalItemSimilarity::Build(matrix);
  const auto updated = matrix.WithRating(1, 2, 5.0F);
  const std::vector<matrix::ItemId> touched = {2};
  gis.RefreshItems(updated, touched);
  EXPECT_NO_THROW(gis.DebugValidate());
}

TEST(GisValidate, RejectsUnsortedRows) {
  // FromRows trusts its input beyond shape checks — exactly the hole
  // DebugValidate covers for model deserialisation.
  std::vector<std::vector<sim::Neighbor>> rows(2);
  rows[0] = {{1, 0.2F}, {1, 0.9F}};  // ascending: violates the sort order
  const auto gis = sim::GlobalItemSimilarity::FromRows(std::move(rows), {});
  EXPECT_THROW(gis.DebugValidate(), util::InvariantError);
}

TEST(GisValidate, RejectsSelfNeighbours) {
  std::vector<std::vector<sim::Neighbor>> rows(2);
  rows[1] = {{1, 0.5F}};
  const auto gis = sim::GlobalItemSimilarity::FromRows(std::move(rows), {});
  EXPECT_THROW(gis.DebugValidate(), util::InvariantError);
}

TEST(GisValidate, RejectsOutOfRangeSimilarity) {
  std::vector<std::vector<sim::Neighbor>> rows(2);
  rows[0] = {{1, 1.5F}};
  const auto gis = sim::GlobalItemSimilarity::FromRows(std::move(rows), {});
  EXPECT_THROW(gis.DebugValidate(), util::InvariantError);
}

TEST(GisValidate, RejectsAsymmetricPairValues) {
  std::vector<std::vector<sim::Neighbor>> rows(2);
  rows[0] = {{1, 0.8F}};
  rows[1] = {{0, 0.3F}};  // reciprocal entry disagrees
  const auto gis = sim::GlobalItemSimilarity::FromRows(std::move(rows), {});
  EXPECT_THROW(gis.DebugValidate(), util::InvariantError);
}

// --- ClusterModel::DebugValidate ----------------------------------------

TEST(ClusterModelValidate, FreshlyBuiltModelPasses) {
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  cluster::KMeansConfig kconfig;
  kconfig.num_clusters = 6;
  const auto kmeans = cluster::RunKMeans(matrix, kconfig);
  const auto model =
      cluster::ClusterModel::Build(matrix, kmeans.assignments, 6);
  EXPECT_NO_THROW(model.DebugValidate(matrix));
}

TEST(ClusterModelValidate, DetectsMatrixMismatch) {
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  cluster::KMeansConfig kconfig;
  kconfig.num_clusters = 4;
  const auto kmeans = cluster::RunKMeans(matrix, kconfig);
  const auto model =
      cluster::ClusterModel::Build(matrix, kmeans.assignments, 4);
  const auto other = matrix.KeepUserPrefix(10);
  EXPECT_THROW(model.DebugValidate(other), util::InvariantError);
}

// --- End-to-end: a fitted CFSF model validates everywhere ---------------

TEST(ModelValidate, FittedModelPassesAllSweeps) {
  core::CfsfConfig config;
  config.num_clusters = 6;
  config.top_m_items = 20;
  config.top_k_users = 8;
  core::CfsfModel model(config);
  const auto matrix = data::GenerateSynthetic(SmallWorld());
  model.Fit(matrix);
  EXPECT_NO_THROW(model.train().DebugValidate());
  EXPECT_NO_THROW(model.gis().DebugValidate());
  EXPECT_NO_THROW(model.cluster_model().DebugValidate(model.train()));
  // Predictions stay finite (the CFSF_CHECK_FINITE tripwire in the
  // fusion path would abort first under the checks flag).
  for (matrix::UserId u = 0; u < 10; ++u) {
    for (matrix::ItemId i = 0; i < 10; ++i) {
      EXPECT_TRUE(std::isfinite(model.Predict(u, i)));
    }
  }
}

TEST(ModelValidate, SweepsPassAfterIncrementalUpdates) {
  core::CfsfConfig config;
  config.num_clusters = 5;
  config.top_m_items = 15;
  config.top_k_users = 6;
  core::CfsfModel model(config);
  model.Fit(data::GenerateSynthetic(SmallWorld()));
  model.InsertRating(2, 3, 5.0F);
  const std::vector<std::pair<matrix::ItemId, matrix::Rating>> ratings = {
      {1, 4.0F}, {5, 3.0F}, {9, 5.0F}};
  model.AddUser(ratings);
  EXPECT_NO_THROW(model.train().DebugValidate());
  EXPECT_NO_THROW(model.gis().DebugValidate());
  EXPECT_NO_THROW(model.cluster_model().DebugValidate(model.train()));
}

}  // namespace
}  // namespace cfsf
