// Seeded stress flood for the HTTP front end (ctest label: stress; CI
// runs it under TSan).  CFSF_NET_THREADS client threads hammer a
// loopback HttpServer over keep-alive connections with a seeded mix of
// predict / batch / top-n / healthz requests for CFSF_NET_ITERS
// iterations each, while the coordinator hot-swaps the model
// generation mid-flood.  Invariants:
//   * zero dropped in-flight responses — every request written gets a
//     complete HTTP response (whatever its status)
//   * the flood straddles the swap: both generations are observed and
//     the stack serves generation 2 afterwards
//   * the final Stop() drains cleanly (no stuck connections)
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "data/synthetic.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "serve/model_generation.hpp"
#include "serve/serving_stack.hpp"
#include "util/rng.hpp"

namespace cfsf {
namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  const long value = std::atol(text);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

/// Blocking loopback client; reconnects on demand.
class FloodClient {
 public:
  explicit FloodClient(std::uint16_t port) : port_(port) {}
  ~FloodClient() { Close(); }

  bool EnsureConnected() {
    if (fd_ >= 0) return true;
    for (int attempt = 0; attempt < 50; ++attempt) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) return false;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port_);
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return true;
      }
      Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  struct Reply {
    bool complete = false;
    int status = 0;
    bool connection_close = false;
    std::string body;
  };

  Reply Roundtrip(const std::string& wire) {
    Reply reply;
    if (fd_ < 0) return reply;
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return reply;
      sent += static_cast<std::size_t>(n);
    }
    std::string buffer;
    char chunk[4096];
    while (true) {
      const std::size_t header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::size_t at = buffer.find("Content-Length: ");
        const std::size_t length =
            at != std::string::npos && at < header_end
                ? static_cast<std::size_t>(std::atoll(
                      buffer.c_str() + at + std::strlen("Content-Length: ")))
                : 0;
        if (buffer.size() >= header_end + 4 + length) {
          reply.complete = true;
          reply.status = std::atoi(buffer.c_str() + 9);
          reply.connection_close =
              buffer.find("Connection: close") != std::string::npos &&
              buffer.find("Connection: close") < header_end;
          reply.body = buffer.substr(header_end + 4, length);
          return reply;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return reply;  // dropped mid-response
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  std::uint16_t port_;
  int fd_ = -1;
};

struct FloodTally {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok_status = 0;
  std::uint64_t gen1 = 0;
  std::uint64_t gen2 = 0;
  std::uint64_t dropped = 0;
};

std::string BuildRequest(util::Rng& rng) {
  switch (rng.NextBounded(8)) {
    case 0: {
      return "GET /v1/top-n?user=" + std::to_string(rng.NextBounded(40)) +
             "&n=5 HTTP/1.1\r\nHost: t\r\n\r\n";
    }
    case 1: {
      const std::string body = "{\"queries\": [[" +
                               std::to_string(rng.NextBounded(40)) + ", " +
                               std::to_string(rng.NextBounded(60)) + "], [" +
                               std::to_string(rng.NextBounded(40)) + ", " +
                               std::to_string(rng.NextBounded(60)) + "]]}";
      return "POST /v1/predict-batch HTTP/1.1\r\nHost: t\r\n"
             "Content-Length: " +
             std::to_string(body.size()) + "\r\n\r\n" + body;
    }
    case 2:
      return "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    default: {
      const std::string body =
          "{\"user\": " + std::to_string(rng.NextBounded(40)) +
          ", \"item\": " + std::to_string(rng.NextBounded(60)) + "}";
      return "POST /v1/predict HTTP/1.1\r\nHost: t\r\n"
             "Content-Length: " +
             std::to_string(body.size()) + "\r\n\r\n" + body;
    }
  }
}

void RunFlood(std::uint16_t port, std::size_t iters,
              const std::atomic<bool>& swap_done, util::Rng rng,
              FloodTally& tally) {
  FloodClient client(port);
  // At least `iters` requests, and keep going (bounded) until a few
  // requests have been issued strictly *after* the coordinator's hot
  // swap landed: a request sent after swap_done is observed must be
  // served by the new generation, so the flood straddles the swap
  // deterministically instead of racing the flag for its last
  // in-flight response.
  std::size_t after_swap = 0;
  for (std::size_t i = 0; (i < iters || after_swap < 4) && i < iters * 50;
       ++i) {
    const bool swapped = swap_done.load(std::memory_order_acquire);
    if (swapped) ++after_swap;
    if (!client.EnsureConnected()) {
      ++tally.issued;
      ++tally.dropped;
      continue;
    }
    const std::string wire = BuildRequest(rng);
    const FloodClient::Reply reply = client.Roundtrip(wire);
    ++tally.issued;
    if (!reply.complete) {
      // A torn connection *with no response at all* is a dropped
      // in-flight request — the invariant this flood exists to check.
      ++tally.dropped;
      client.Close();
      continue;
    }
    ++tally.completed;
    if (reply.status == 200) ++tally.ok_status;
    if (reply.body.find("\"generation\":1") != std::string::npos) {
      ++tally.gen1;
    } else if (reply.body.find("\"generation\":2") != std::string::npos) {
      ++tally.gen2;
    }
    if (reply.connection_close) client.Close();
  }
}

TEST(NetStressTest, FloodSurvivesMidFlightHotSwapWithZeroDrops) {
  const std::size_t threads = EnvSize("CFSF_NET_THREADS", 4);
  const std::size_t iters = EnvSize("CFSF_NET_ITERS", 60);

  data::SyntheticConfig dconfig;
  dconfig.num_users = 40;
  dconfig.num_items = 60;
  dconfig.min_ratings_per_user = 12;
  dconfig.max_ratings_per_user = 25;  // leave unrated items for top-N
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 12;
  config.top_k_users = 6;
  auto model = std::make_unique<core::CfsfModel>(config);
  model->Fit(data::GenerateSynthetic(dconfig));
  const std::string swap_path =
      ::testing::TempDir() + "/cfsf_net_stress_swap.bin";
  core::SaveModel(*model, swap_path);

  serve::ModelGeneration models;
  models.Install(std::move(model));
  serve::ServingOptions serving;
  serving.num_workers = 4;
  serve::ServingStack stack(models, serving);
  net::ServingService service(stack);

  net::ServerOptions options;
  options.num_workers = threads;          // one worker per keep-alive client
  options.max_connections = threads * 2;  // headroom for reconnects
  net::HttpServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const util::Rng root(0xF100D);
  std::atomic<bool> swap_done{false};
  std::vector<FloodTally> tallies(threads);
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back(RunFlood, server.port(), iters,
                         std::cref(swap_done), root.Fork(t),
                         std::ref(tallies[t]));
  }

  // Hot-swap the model generation while the flood is in full flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  core::LoadRetryOptions retry;
  retry.initial_backoff = std::chrono::milliseconds(1);
  models.LoadAndSwap(swap_path, retry);
  swap_done.store(true, std::memory_order_release);

  for (std::thread& client : clients) client.join();

  FloodTally total;
  for (const FloodTally& tally : tallies) {
    total.issued += tally.issued;
    total.completed += tally.completed;
    total.ok_status += tally.ok_status;
    total.gen1 += tally.gen1;
    total.gen2 += tally.gen2;
    total.dropped += tally.dropped;
  }

  EXPECT_GE(total.issued, threads * iters);
  EXPECT_EQ(total.dropped, 0u) << "an in-flight response was dropped";
  EXPECT_EQ(total.completed, total.issued);
  EXPECT_GT(total.ok_status, 0u);
  // The flood straddled the swap: the new generation must be visible,
  // and the stack must be serving it now.
  EXPECT_GT(total.gen2, 0u) << "no response observed generation 2";
  EXPECT_EQ(models.ActiveGeneration(), 2u);

  // Graceful drain: Stop() returns only once every connection worker
  // wound down, so nothing can be left holding a socket.
  server.Stop();
  EXPECT_EQ(server.ActiveConnections(), 0u);
}

}  // namespace
}  // namespace cfsf
