// Unit tests for cfsf::cluster — K-means under PCC and the smoothing /
// iCluster model (Eqs. 6–9).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clustering/kmeans.hpp"
#include "clustering/smoothing.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace cfsf::cluster {
namespace {

matrix::RatingMatrix TwoCampMatrix() {
  // Two obvious taste camps over 6 items: camp A loves items 0-2, camp B
  // loves items 3-5.
  matrix::RatingMatrixBuilder b(8, 6);
  for (matrix::UserId u = 0; u < 4; ++u) {
    b.Add(u, 0, 5); b.Add(u, 1, 4); b.Add(u, 2, 5);
    b.Add(u, 3, 1); b.Add(u, 4, 2); b.Add(u, 5, 1);
  }
  for (matrix::UserId u = 4; u < 8; ++u) {
    b.Add(u, 0, 1); b.Add(u, 1, 2); b.Add(u, 2, 1);
    b.Add(u, 3, 5); b.Add(u, 4, 4); b.Add(u, 5, 5);
  }
  return b.Build();
}

// -------------------------------------------------------------- kmeans ----

TEST(KMeans, SeparatesObviousCamps) {
  const auto m = TwoCampMatrix();
  KMeansConfig config;
  config.num_clusters = 2;
  const auto result = RunKMeans(m, config);
  ASSERT_EQ(result.assignments.size(), 8u);
  // All of camp A share a cluster, all of camp B the other.
  for (std::size_t u = 1; u < 4; ++u) {
    EXPECT_EQ(result.assignments[u], result.assignments[0]);
  }
  for (std::size_t u = 5; u < 8; ++u) {
    EXPECT_EQ(result.assignments[u], result.assignments[4]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[4]);
}

TEST(KMeans, DeterministicPerSeed) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 60;
  dconfig.num_items = 80;
  dconfig.min_ratings_per_user = 10;
  dconfig.log_mean = 3.0;
  const auto m = data::GenerateSynthetic(dconfig);
  KMeansConfig config;
  config.num_clusters = 5;
  const auto a = RunKMeans(m, config);
  const auto b = RunKMeans(m, config);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KMeans, ParallelMatchesSerial) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 40;
  dconfig.num_items = 50;
  dconfig.min_ratings_per_user = 8;
  dconfig.log_mean = 2.8;
  const auto m = data::GenerateSynthetic(dconfig);
  KMeansConfig config;
  config.num_clusters = 4;
  config.parallel = false;
  const auto serial = RunKMeans(m, config);
  config.parallel = true;
  const auto parallel = RunKMeans(m, config);
  EXPECT_EQ(serial.assignments, parallel.assignments);
}

TEST(KMeans, ClusterSizesSumToUsers) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 50;
  dconfig.num_items = 40;
  dconfig.min_ratings_per_user = 8;
  dconfig.log_mean = 2.8;
  const auto m = data::GenerateSynthetic(dconfig);
  KMeansConfig config;
  config.num_clusters = 7;
  const auto result = RunKMeans(m, config);
  std::size_t total = 0;
  for (const auto s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, m.num_users());
  // No empty clusters after repair on this data.
  for (const auto s : result.cluster_sizes) EXPECT_GT(s, 0u);
}

TEST(KMeans, AssignmentsAreLocallyOptimal) {
  const auto m = TwoCampMatrix();
  KMeansConfig config;
  config.num_clusters = 2;
  const auto result = RunKMeans(m, config);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const double own = UserCentroidPcc(
        m, static_cast<matrix::UserId>(u),
        result.centroids.Row(result.assignments[u]),
        result.centroid_means[result.assignments[u]]);
    for (std::size_t c = 0; c < config.num_clusters; ++c) {
      const double other =
          UserCentroidPcc(m, static_cast<matrix::UserId>(u),
                          result.centroids.Row(c), result.centroid_means[c]);
      EXPECT_GE(own + 1e-9, other);
    }
  }
}

TEST(KMeans, SingleClusterTakesEverybody) {
  const auto m = TwoCampMatrix();
  KMeansConfig config;
  config.num_clusters = 1;
  const auto result = RunKMeans(m, config);
  for (const auto a : result.assignments) EXPECT_EQ(a, 0u);
  EXPECT_EQ(result.cluster_sizes[0], 8u);
}

TEST(KMeans, RejectsInvalidConfigs) {
  const auto m = TwoCampMatrix();
  KMeansConfig config;
  config.num_clusters = 0;
  EXPECT_THROW(RunKMeans(m, config), util::ConfigError);
  config.num_clusters = 9;  // more clusters than the 8 users
  EXPECT_THROW(RunKMeans(m, config), util::ConfigError);
}

TEST(KMeans, CentroidCellsAreClusterMeans) {
  const auto m = TwoCampMatrix();
  KMeansConfig config;
  config.num_clusters = 2;
  const auto result = RunKMeans(m, config);
  const auto camp_a = result.assignments[0];
  // Item 0 mean within camp A is exactly 5.
  EXPECT_NEAR(result.centroids(camp_a, 0), 5.0, 1e-12);
  EXPECT_NEAR(result.centroids(camp_a, 3), 1.0, 1e-12);
}

// ------------------------------------------------------- cluster model ----

ClusterModel TwoCampModel(const matrix::RatingMatrix& m) {
  KMeansConfig config;
  config.num_clusters = 2;
  const auto result = RunKMeans(m, config);
  return ClusterModel::Build(m, result.assignments, 2);
}

TEST(ClusterModel, Eq8DeviationsByHand) {
  // Hand-checkable: 2 users in one cluster.
  //        i0 i1
  // u0      5  1   (mean 3)
  // u1      4  2   (mean 3)
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5); b.Add(0, 1, 1);
  b.Add(1, 0, 4); b.Add(1, 1, 2);
  const auto m = b.Build();
  const std::vector<std::uint32_t> assignments{0, 0};
  const auto model = ClusterModel::Build(m, assignments, 1);
  // Δ(C0, i0) = ((5-3)+(4-3))/2 = 1.5 ; Δ(C0, i1) = -1.5.
  EXPECT_NEAR(model.ClusterDeviation(0, 0), 1.5, 1e-12);
  EXPECT_NEAR(model.ClusterDeviation(0, 1), -1.5, 1e-12);
  EXPECT_TRUE(model.ClusterHasRating(0, 0));
}

TEST(ClusterModel, Eq7SmoothedCells) {
  //        i0 i1 i2
  // u0      5  -  1   (mean 3)    cluster 0
  // u1      4  2  -   (mean 3)    cluster 0
  matrix::RatingMatrixBuilder b(2, 3);
  b.Add(0, 0, 5); b.Add(0, 2, 1);
  b.Add(1, 0, 4); b.Add(1, 1, 2);
  const auto m = b.Build();
  const std::vector<std::uint32_t> assignments{0, 0};
  const auto model = ClusterModel::Build(m, assignments, 1);
  // Original cells pass through.
  EXPECT_DOUBLE_EQ(model.SmoothedProfile(0)[0], 5.0);
  // u0 unrated i1: r̄_u0 + Δ(C0, i1) = 3 + (2-3)/1 = 2.
  EXPECT_NEAR(model.SmoothedProfile(0)[1], 2.0, 1e-12);
  // u1 unrated i2: 3 + (1-3)/1 = 1.
  EXPECT_NEAR(model.SmoothedProfile(1)[2], 1.0, 1e-12);
  // Masks reflect provenance.
  EXPECT_NE(model.OriginalMask(0)[0], 0);
  EXPECT_EQ(model.OriginalMask(0)[1], 0);
}

TEST(ClusterModel, FallbackToGlobalDeviation) {
  // Item 1 is rated only by cluster 1; cluster 0's deviation for it must
  // fall back to the global item deviation, and ClusterHasRating is false.
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5);               // user 0 (cluster 0)
  b.Add(1, 0, 1); b.Add(1, 1, 4);  // user 1 (cluster 1), mean 2.5
  const auto m = b.Build();
  const std::vector<std::uint32_t> assignments{0, 1};
  const auto model = ClusterModel::Build(m, assignments, 2);
  EXPECT_FALSE(model.ClusterHasRating(0, 1));
  // Global deviation of i1: (4 - 2.5)/1 = 1.5.
  EXPECT_NEAR(model.ClusterDeviation(0, 1), 1.5, 1e-12);
}

TEST(ClusterModel, EntirelyUnratedItemDeviatesZero) {
  matrix::RatingMatrixBuilder b(2, 2);
  b.Add(0, 0, 5);
  b.Add(1, 0, 1);
  const auto m = b.Build();
  const std::vector<std::uint32_t> assignments{0, 0};
  const auto model = ClusterModel::Build(m, assignments, 1);
  EXPECT_DOUBLE_EQ(model.ClusterDeviation(0, 1), 0.0);
  // Smoothed value = user mean + 0.
  EXPECT_DOUBLE_EQ(model.SmoothedProfile(0)[1], m.UserMean(0));
}

TEST(ClusterModel, DeviationShrinkagePullsTowardGlobal) {
  matrix::RatingMatrixBuilder b(3, 1);
  b.Add(0, 0, 5);  // cluster 0; user mean 5 → dev 0 (single rating)
  b.Add(1, 0, 1);
  b.Add(2, 0, 3);
  const auto m = b.Build();
  const std::vector<std::uint32_t> assignments{0, 1, 1};
  const auto raw = ClusterModel::Build(m, assignments, 2, true, 0.0);
  const auto shrunk = ClusterModel::Build(m, assignments, 2, true, 100.0);
  // Heavy shrinkage pushes both clusters to (almost) the global deviation.
  EXPECT_NEAR(shrunk.ClusterDeviation(0, 0), shrunk.ClusterDeviation(1, 0),
              0.05);
  (void)raw;
}

TEST(ClusterModel, IClusterSortedAndComplete) {
  const auto m = TwoCampMatrix();
  const auto model = TwoCampModel(m);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto ic = model.IClusterOf(static_cast<matrix::UserId>(u));
    ASSERT_EQ(ic.size(), 2u);
    EXPECT_GE(ic[0].similarity, ic[1].similarity);
    std::set<std::uint32_t> clusters{ic[0].cluster, ic[1].cluster};
    EXPECT_EQ(clusters.size(), 2u);
  }
}

TEST(ClusterModel, IClusterPrefersOwnCamp) {
  const auto m = TwoCampMatrix();
  const auto model = TwoCampModel(m);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto ic = model.IClusterOf(static_cast<matrix::UserId>(u));
    EXPECT_EQ(ic[0].cluster, model.ClusterOf(static_cast<matrix::UserId>(u)))
        << "user " << u << " should be most affine to their own camp";
  }
}

TEST(ClusterModel, AffinityOfExternalProfile) {
  const auto m = TwoCampMatrix();
  const auto model = TwoCampModel(m);
  // A brand-new camp-A-style profile (loves items 0-2).
  const std::vector<matrix::Entry> row{{0, 5.0F}, {1, 5.0F}, {3, 1.0F}};
  const double mean = 11.0 / 3.0;
  const auto camp_a = model.ClusterOf(0);
  const auto camp_b = model.ClusterOf(4);
  EXPECT_GT(model.AffinityOf(row, mean, camp_a),
            model.AffinityOf(row, mean, camp_b));
}

TEST(ClusterModel, SmoothedMatrixCoversEveryCell) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 40;
  dconfig.num_items = 60;
  dconfig.min_ratings_per_user = 8;
  dconfig.log_mean = 2.8;
  const auto m = data::GenerateSynthetic(dconfig);
  KMeansConfig config;
  config.num_clusters = 4;
  const auto kmeans = RunKMeans(m, config);
  const auto model = ClusterModel::Build(m, kmeans.assignments, 4);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto profile = model.SmoothedProfile(static_cast<matrix::UserId>(u));
    for (const double v : profile) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ClusterModel, OriginalMaskMatchesMatrix) {
  data::SyntheticConfig dconfig;
  dconfig.num_users = 30;
  dconfig.num_items = 40;
  dconfig.min_ratings_per_user = 8;
  dconfig.log_mean = 2.8;
  const auto m = data::GenerateSynthetic(dconfig);
  KMeansConfig config;
  config.num_clusters = 3;
  const auto kmeans = RunKMeans(m, config);
  const auto model = ClusterModel::Build(m, kmeans.assignments, 3);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto mask = model.OriginalMask(static_cast<matrix::UserId>(u));
    std::size_t set_bits = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) {
        ++set_bits;
        EXPECT_TRUE(m.HasRating(static_cast<matrix::UserId>(u),
                                static_cast<matrix::ItemId>(i)));
      }
    }
    EXPECT_EQ(set_bits, m.UserRatingCount(static_cast<matrix::UserId>(u)));
  }
}

TEST(ClusterModel, ParallelMatchesSerial) {
  const auto m = TwoCampMatrix();
  const std::vector<std::uint32_t> assignments{0, 0, 0, 0, 1, 1, 1, 1};
  const auto a = ClusterModel::Build(m, assignments, 2, /*parallel=*/true);
  const auto b = ClusterModel::Build(m, assignments, 2, /*parallel=*/false);
  for (std::size_t u = 0; u < m.num_users(); ++u) {
    const auto pa = a.SmoothedProfile(static_cast<matrix::UserId>(u));
    const auto pb = b.SmoothedProfile(static_cast<matrix::UserId>(u));
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(ClusterModel, ValidatesInputs) {
  const auto m = TwoCampMatrix();
  const std::vector<std::uint32_t> bad_size{0, 0};
  EXPECT_THROW(ClusterModel::Build(m, bad_size, 2), util::ConfigError);
  const std::vector<std::uint32_t> bad_cluster{0, 0, 0, 0, 1, 1, 1, 9};
  EXPECT_THROW(ClusterModel::Build(m, bad_cluster, 2), util::ConfigError);
  const std::vector<std::uint32_t> ok(8, 0);
  EXPECT_THROW(ClusterModel::Build(m, ok, 1, true, -1.0), util::ConfigError);
}

}  // namespace
}  // namespace cfsf::cluster
