// Fault-tier tests (ctest label `fault`) for checkpointed recovery —
// the crash half of the bounded-replay contract:
//
//   * whole-loop kill-recover harness: a forked child runs the real
//     ingest pipeline — durable appends with request ids, DeltaFolder
//     folds, CheckpointManager checkpoints (bundle, manifest, CURRENT
//     swap, GC, WAL compaction) — and is SIGKILLed at seeded points,
//     including deliberately mid-checkpoint.  Recovery must then lose
//     zero acked records, replay only the WAL suffix past the chosen
//     watermark, and absorb a request-id retry without a double fold;
//   * randomized corruption sweep over checkpoint manifests, bundles
//     and CURRENT: any single damaged file must fall down the recovery
//     ladder to a state that still covers every appended record —
//     never a crash, never a silently wrong model;
//   * armed failpoints: "ckpt.write" and "ckpt.manifest" abort a
//     checkpoint without ever referencing it; "wal.compact" fail-stops
//     compaction while checkpoints keep working and the log stays
//     intact.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recover.hpp"
#include "core/cfsf.hpp"
#include "data/synthetic.hpp"
#include "matrix/types.hpp"
#include "obs/failpoint.hpp"
#include "serve/delta_folder.hpp"
#include "serve/model_generation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wal/compact.hpp"
#include "wal/format.hpp"
#include "wal/log.hpp"
#include "wal/replay.hpp"

namespace cfsf {
namespace {

namespace fs = std::filesystem;

using obs::FailPointRegistry;
using obs::ScopedFailPoint;

constexpr std::uint32_t kUsers = 30;
constexpr std::uint32_t kItems = 40;

// Pipe event vocabulary: plain values are acked lsns; these two bracket
// every CheckpointNow call so the driver can aim kills mid-checkpoint.
constexpr std::uint64_t kCkptBegin = 0xFFFFFFFF00000001ull;
constexpr std::uint64_t kCkptEnd = 0xFFFFFFFF00000002ull;

// Deterministic rating keyed by lsn; cells are unique for
// lsn < kUsers * kItems, so every acked record is independently
// checkable in the recovered model.
matrix::RatingTriple RecordForLsn(std::uint64_t lsn) {
  matrix::RatingTriple record;
  record.user = static_cast<matrix::UserId>(lsn % kUsers);
  record.item = static_cast<matrix::ItemId>((lsn / kUsers) % kItems);
  record.value = static_cast<matrix::Rating>(1.0 + (lsn % 9) * 0.5);
  record.timestamp = static_cast<matrix::Timestamp>(1000000000 + lsn);
  return record;
}

std::unique_ptr<core::CfsfModel> TinySeed() {
  data::SyntheticConfig dconfig;
  dconfig.num_users = kUsers;
  dconfig.num_items = kItems;
  dconfig.min_ratings_per_user = 8;
  dconfig.seed = 77;
  core::CfsfConfig config;
  config.num_clusters = 4;
  config.top_m_items = 12;
  config.top_k_users = 6;
  // The kill-recover harness forks mid-test; a child must never submit
  // to ThreadPool::Shared() — its worker threads do not survive fork()
  // and pool.Wait() would deadlock.  Serial fit keeps every child (and
  // the in-parent audits that would warm the pool up) off that path.
  config.parallel = false;
  auto model = std::make_unique<core::CfsfModel>(config);
  model->Fit(data::GenerateSynthetic(dconfig));
  return model;
}

void ExpectFoldedUpTo(const core::CfsfModel& model, std::uint64_t upto) {
  for (std::uint64_t lsn = 1; lsn <= upto; ++lsn) {
    const matrix::RatingTriple want = RecordForLsn(lsn);
    const auto got = model.train().GetRating(want.user, want.item);
    ASSERT_TRUE(got.has_value()) << "acked lsn " << lsn << " lost";
    EXPECT_FLOAT_EQ(*got, want.value) << "acked lsn " << lsn << " corrupted";
  }
}

class CkptCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Global().DisarmAll();
    root_ = (fs::path(::testing::TempDir()) /
             ("cfsf_ckpt_crash_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    wal_dir_ = root_ + "/wal";
    ckpt_dir_ = root_ + "/ckpt";
  }
  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    fs::remove_all(root_);
  }

  std::string root_;
  std::string wal_dir_;
  std::string ckpt_dir_;
};

// ------------------------------------------------- kill-recover ------

struct KillOutcome {
  std::uint64_t highest_acked = 0;
  bool killed_mid_checkpoint = false;
};

// One forked run of the whole pipeline, one seeded SIGKILL, one full
// recovery audit.  Returns what the iteration observed so the driver
// can report coverage.
KillOutcome RunWholeLoopIteration(const std::string& wal_dir,
                                  const std::string& ckpt_dir,
                                  std::uint64_t seed) {
  fs::remove_all(wal_dir);
  fs::remove_all(ckpt_dir);
  util::Rng rng(seed);
  // Every third iteration aims at a checkpoint: wait for the Nth
  // kCkptBegin, then kill inside the jitter window — the kill lands in
  // the bundle write, the manifest write, the CURRENT swap, GC or
  // compaction.  The rest kill after a seeded number of events, which
  // mostly lands mid-append / mid-fold.
  const bool aim_at_checkpoint = seed % 3 == 0;
  const std::size_t kill_after =
      aim_at_checkpoint ? static_cast<std::size_t>(rng.NextInt(1, 5))
                        : static_cast<std::size_t>(rng.NextInt(3, 80));
  const auto jitter_us = static_cast<useconds_t>(rng.NextBounded(700));

  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return {};
  }
  const pid_t child = ::fork();
  if (child < 0) {
    ADD_FAILURE() << "fork() failed";
    ::close(pipe_fd[0]);
    ::close(pipe_fd[1]);
    return {};
  }

  if (child == 0) {
    // The real pipeline, miniaturized: 3-record segments so compaction
    // has segments to remove, a fold every 5 appends, a checkpoint
    // (with GC + compaction) every 11.  Every ack is durable before it
    // goes down the pipe.  Bounded loop; ~654 events max never fills
    // the pipe buffer.
    ::close(pipe_fd[0]);
    auto emit = [&](std::uint64_t value) {
      if (::write(pipe_fd[1], &value, sizeof(value)) != sizeof(value)) {
        ::_exit(3);
      }
    };
    try {
      wal::WalOptions wal_options;
      wal_options.max_segment_bytes =
          wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
      ckpt::RecoverOptions recover_options;
      recover_options.ckpt_dir = ckpt_dir;
      recover_options.wal_dir = wal_dir;
      recover_options.wal_options = wal_options;
      recover_options.seed_model = TinySeed;
      ckpt::RecoveryResult recovered = ckpt::Recover(recover_options);

      serve::ModelGeneration models;
      serve::DeltaFolderOptions folder_options;
      folder_options.initial_watermark = recovered.log->next_lsn() - 1;
      serve::DeltaFolder folder(*recovered.log, models,
                                std::move(recovered.model), folder_options);
      ckpt::CheckpointOptions ckpt_options;
      ckpt_options.dir = ckpt_dir;
      ckpt_options.keep_last = 2;
      ckpt::CheckpointManager manager(folder, *recovered.log, ckpt_options);

      for (std::uint64_t i = 1; i <= 600; ++i) {
        const std::uint64_t lsn = recovered.log->next_lsn();
        const wal::AppendAck ack = recovered.log->Append(
            RecordForLsn(lsn), /*require_durable=*/true,
            /*request_id=*/lsn);
        if (ack.lsn != lsn || ack.deduplicated) ::_exit(5);
        emit(lsn);
        if (lsn % 5 == 0) folder.FoldOnce();
        if (lsn % 11 == 0) {
          emit(kCkptBegin);
          manager.CheckpointNow();
          emit(kCkptEnd);
        }
      }
    } catch (...) {
      ::_exit(4);
    }
    ::_exit(0);
  }

  ::close(pipe_fd[1]);
  KillOutcome outcome;
  std::size_t events = 0;
  std::size_t checkpoints_begun = 0;
  bool inside_checkpoint = false;
  std::uint64_t value = 0;
  auto consume = [&](std::uint64_t v) {
    if (v == kCkptBegin) {
      ++checkpoints_begun;
      inside_checkpoint = true;
    } else if (v == kCkptEnd) {
      inside_checkpoint = false;
    } else {
      outcome.highest_acked = v;
    }
  };
  while (::read(pipe_fd[0], &value, sizeof(value)) == sizeof(value)) {
    consume(value);
    ++events;
    if (aim_at_checkpoint ? checkpoints_begun >= kill_after
                          : events >= kill_after) {
      break;
    }
  }
  ::usleep(jitter_us);
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  // Acks that raced the kill are just as durable: drain them first.
  while (::read(pipe_fd[0], &value, sizeof(value)) == sizeof(value)) {
    consume(value);
  }
  ::close(pipe_fd[0]);
  outcome.killed_mid_checkpoint = inside_checkpoint;
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    ADD_FAILURE() << "seed " << seed << ": pipeline child failed with exit "
                  << WEXITSTATUS(status);
    return outcome;
  }

  // Recovery audit.  (1) The ladder must produce a model — a crash here
  // is an automatic failure.
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir;
  options.wal_dir = wal_dir;
  options.seed_model = TinySeed;
  ckpt::RecoveryResult result;
  try {
    result = ckpt::Recover(options);
  } catch (const util::Error& e) {
    ADD_FAILURE() << "seed " << seed << ": recovery threw: " << e.what();
    return outcome;
  }

  // (2) Zero acked-record loss: every acked lsn's cell reads back.
  ExpectFoldedUpTo(*result.model, outcome.highest_acked);

  // (3) Bounded replay: the suffix recovery folded is exactly the
  // records past the watermark (independent read-only count), and
  // compaction never outran the chosen starting point.
  const wal::ReplayResult replay = wal::ReplayLog(wal_dir);
  std::size_t past_watermark = 0;
  for (const wal::RecoveredRecord& rec : replay.records) {
    if (rec.lsn > result.info.watermark) ++past_watermark;
  }
  EXPECT_EQ(result.info.replayed_records, past_watermark)
      << "seed " << seed << ": replay was not bounded by the watermark";
  EXPECT_EQ(result.info.skipped_records, 0u) << "seed " << seed;
  EXPECT_FALSE(result.info.degraded_history)
      << "seed " << seed << ": compaction removed records the chosen "
      << "checkpoint does not cover (watermark " << result.info.watermark
      << ", log starts at " << replay.first_lsn << ")";
  EXPECT_GE(replay.records.empty() ? result.log->next_lsn() - 1
                                   : replay.records.back().lsn,
            outcome.highest_acked)
      << "seed " << seed << ": an acked record vanished from the log";

  // (4) Idempotency across the crash: a client retry of the last acked
  // write is absorbed — original lsn, nothing new appended, nothing
  // handed to the folder a second time.
  if (outcome.highest_acked > 0) {
    const std::uint64_t before = result.log->next_lsn();
    const wal::AppendAck retry =
        result.log->Append(RecordForLsn(outcome.highest_acked),
                           /*require_durable=*/true,
                           /*request_id=*/outcome.highest_acked);
    EXPECT_TRUE(retry.deduplicated)
        << "seed " << seed << ": retry after crash was double-applied";
    EXPECT_EQ(retry.lsn, outcome.highest_acked) << "seed " << seed;
    EXPECT_EQ(result.log->next_lsn(), before) << "seed " << seed;
    std::vector<wal::AckedRecord> drained;
    EXPECT_EQ(result.log->DrainAcked(&drained), 0u)
        << "seed " << seed << ": a deduplicated retry reached the folder "
        << "(double fold)";
  }
  return outcome;
}

TEST_F(CkptCrashTest, WholeLoopKillRecoverLosesNothingAndReplaysBounded) {
  // >= 40 seeded whole-loop kills (acceptance floor); a third aim
  // specifically inside CheckpointNow, covering the bundle write, the
  // manifest write, the CURRENT swap, GC and compaction.
  constexpr std::uint64_t kIterations = 48;
  std::uint64_t total_acked = 0;
  std::size_t mid_checkpoint_kills = 0;
  for (std::uint64_t seed = 1; seed <= kIterations; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const KillOutcome outcome =
        RunWholeLoopIteration(wal_dir_, ckpt_dir_, 0xCB0C0DE0 + seed);
    total_acked += outcome.highest_acked;
    if (outcome.killed_mid_checkpoint) ++mid_checkpoint_kills;
    if (HasFatalFailure()) return;
  }
  // The harness must actually have exercised the pipeline: real acks,
  // and a healthy share of kills landing inside a checkpoint.
  EXPECT_GT(total_acked, kIterations);
  EXPECT_GE(mid_checkpoint_kills, 4u)
      << "the seeded schedule stopped hitting checkpoints mid-write; "
      << "retune the aim-at-checkpoint seeds";
}

// ---------------------------------------------- corruption sweep ------

// Builds a healthy two-checkpoint state with a compacted WAL; returns
// the number of records appended.
std::uint64_t BuildGoldenState(const std::string& wal_dir,
                               const std::string& ckpt_dir) {
  wal::WalOptions wal_options;
  wal_options.max_segment_bytes =
      wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
  wal::WriteAheadLog log(wal_dir, wal_options);
  serve::ModelGeneration models;
  serve::DeltaFolder folder(log, models, TinySeed());
  ckpt::CheckpointOptions options;
  options.dir = ckpt_dir;
  options.keep_last = 2;
  ckpt::CheckpointManager manager(folder, log, options);
  std::uint64_t lsn = 0;
  for (int batch = 0; batch < 2; ++batch) {
    for (int i = 0; i < 12; ++i) {
      log.Append(RecordForLsn(++lsn), /*require_durable=*/true);
    }
    folder.FoldOnce();
    manager.CheckpointNow();
  }
  // A few records past the newest watermark, so recovery always has a
  // suffix to replay.
  for (int i = 0; i < 5; ++i) {
    log.Append(RecordForLsn(++lsn), /*require_durable=*/true);
  }
  log.Close();
  return lsn;
}

TEST_F(CkptCrashTest, CorruptionSweepFallsDownTheLadderNeverWrong) {
  const std::string golden_wal = root_ + "/golden_wal";
  const std::string golden_ckpt = root_ + "/golden_ckpt";
  const std::uint64_t total = BuildGoldenState(golden_wal, golden_ckpt);
  const std::vector<std::uint64_t> ids = ckpt::ListCheckpointIds(golden_ckpt);
  ASSERT_EQ(ids.size(), 2u);

  util::Rng rng(0xC0 + 0xDE);
  for (int trial = 0; trial < 48; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    fs::remove_all(wal_dir_);
    fs::remove_all(ckpt_dir_);
    fs::copy(golden_wal, wal_dir_, fs::copy_options::recursive);
    fs::copy(golden_ckpt, ckpt_dir_, fs::copy_options::recursive);

    // Victim: newest manifest / newest bundle / older manifest /
    // CURRENT.  Damage: single bit flip or truncation.
    const fs::path root(ckpt_dir_);
    fs::path victim;
    switch (rng.NextBounded(4)) {
      case 0: victim = root / ckpt::ManifestFileName(ids.back()); break;
      case 1: victim = root / ckpt::ModelFileName(ids.back()); break;
      case 2: victim = root / ckpt::ManifestFileName(ids.front()); break;
      default: victim = root / ckpt::kCurrentFileName; break;
    }
    const auto size = fs::file_size(victim);
    if (rng.NextBounded(2) == 0) {
      const auto offset = static_cast<std::streamoff>(rng.NextBounded(size));
      std::fstream file(victim,
                        std::ios::binary | std::ios::in | std::ios::out);
      ASSERT_TRUE(file.good());
      file.seekg(offset);
      char byte = 0;
      file.get(byte);
      byte = static_cast<char>(byte ^ (1 << rng.NextBounded(8)));
      file.seekp(offset);
      file.put(byte);
    } else {
      fs::resize_file(victim, rng.NextBounded(size));  // [0, size)
    }

    // Never a crash; and because compaction is bounded by the *minimum*
    // retained watermark, whichever rung the ladder lands on still
    // covers every appended record.
    ckpt::RecoverOptions options;
    options.ckpt_dir = ckpt_dir_;
    options.wal_dir = wal_dir_;
    options.seed_model = TinySeed;
    ckpt::RecoveryResult result;
    try {
      result = ckpt::Recover(options);
    } catch (const util::Error& e) {
      ADD_FAILURE() << "recovery threw on single-file damage to "
                    << victim.filename().string() << ": " << e.what();
      continue;
    }
    EXPECT_FALSE(result.info.degraded_history);
    ExpectFoldedUpTo(*result.model, total);
    if (HasFatalFailure()) return;
  }
}

// ------------------------------------------------ armed failpoints ----

struct Pipeline {
  explicit Pipeline(const std::string& wal_dir, const std::string& ckpt_dir)
      : log(wal_dir,
            [] {
              wal::WalOptions options;
              options.max_segment_bytes =
                  wal::kSegmentHeaderBytes + 3 * wal::kRecordBytes;
              return options;
            }()),
        folder(log, models, TinySeed()) {
    ckpt::CheckpointOptions options;
    options.dir = ckpt_dir;
    options.keep_last = 2;
    manager =
        std::make_unique<ckpt::CheckpointManager>(folder, log, options);
  }

  void Ingest(std::uint64_t records) {
    for (std::uint64_t i = 0; i < records; ++i) {
      log.Append(RecordForLsn(log.next_lsn()), /*require_durable=*/true);
    }
    folder.FoldOnce();
  }

  wal::WriteAheadLog log;
  serve::ModelGeneration models;
  serve::DeltaFolder folder;
  std::unique_ptr<ckpt::CheckpointManager> manager;
};

TEST_F(CkptCrashTest, CheckpointWriteFaultLeavesThePreviousCheckpointLive) {
  Pipeline pipeline(wal_dir_, ckpt_dir_);
  pipeline.Ingest(6);
  EXPECT_EQ(pipeline.manager->CheckpointNow(), 1u);
  pipeline.Ingest(6);
  {
    ScopedFailPoint fp("ckpt.write", "once");
    EXPECT_THROW(pipeline.manager->CheckpointNow(), util::IoError);
  }
  EXPECT_EQ(pipeline.manager->status().failures, 1u);
  std::uint64_t current = 0;
  ASSERT_TRUE(ckpt::ReadCurrentFile(ckpt_dir_, &current));
  EXPECT_EQ(current, 1u) << "a failed checkpoint moved CURRENT";
  // The next attempt succeeds with a fresh id; checkpointing is not
  // fail-stop.
  EXPECT_EQ(pipeline.manager->CheckpointNow(), 3u);
}

TEST_F(CkptCrashTest, ManifestFaultNeverReferencesTheOrphanBundle) {
  Pipeline pipeline(wal_dir_, ckpt_dir_);
  pipeline.Ingest(6);
  EXPECT_EQ(pipeline.manager->CheckpointNow(), 1u);
  pipeline.Ingest(6);
  {
    ScopedFailPoint fp("ckpt.manifest", "once");
    EXPECT_THROW(pipeline.manager->CheckpointNow(), util::IoError);
  }
  // The bundle may exist, but nothing points at it: recovery (run
  // against a copy of the WAL, so the live pipeline keeps its log)
  // uses checkpoint 1.
  EXPECT_EQ(ckpt::ListCheckpointIds(ckpt_dir_),
            (std::vector<std::uint64_t>{1}));
  const std::string wal_copy = root_ + "/wal_copy";
  fs::copy(wal_dir_, wal_copy, fs::copy_options::recursive);
  ckpt::RecoverOptions options;
  options.ckpt_dir = ckpt_dir_;
  options.wal_dir = wal_copy;
  options.seed_model = TinySeed;
  {
    const ckpt::RecoveryResult result = ckpt::Recover(options);
    EXPECT_EQ(result.info.source, "checkpoint");
    EXPECT_EQ(result.info.checkpoint_id, 1u);
    ExpectFoldedUpTo(*result.model, 12);
  }
  // A later successful checkpoint's GC sweeps the orphan bundle.
  const fs::path orphan = fs::path(ckpt_dir_) / ckpt::ModelFileName(2);
  EXPECT_TRUE(fs::exists(orphan));
  pipeline.Ingest(6);
  EXPECT_GT(pipeline.manager->CheckpointNow(), 2u);
  EXPECT_FALSE(fs::exists(orphan)) << "orphan bundle was never GC'd";
}

TEST_F(CkptCrashTest, CompactFaultFailStopsCompactionButNotCheckpoints) {
  Pipeline pipeline(wal_dir_, ckpt_dir_);
  pipeline.Ingest(9);
  const std::size_t records_before =
      wal::ReplayLog(wal_dir_).records.size();
  {
    ScopedFailPoint fp("wal.compact", "once");
    EXPECT_EQ(pipeline.manager->CheckpointNow(), 1u)
        << "a compaction fault must not fail the checkpoint";
  }
  ckpt::CheckpointStatus status = pipeline.manager->status();
  EXPECT_TRUE(status.compaction_failed);
  EXPECT_EQ(status.compacted_segments, 0u);
  // Fail-stop: the log is intact and never compacted again, while
  // checkpoints keep the replay bound.
  EXPECT_EQ(wal::ReplayLog(wal_dir_).records.size(), records_before);
  pipeline.Ingest(9);
  EXPECT_EQ(pipeline.manager->CheckpointNow(), 2u);
  status = pipeline.manager->status();
  EXPECT_TRUE(status.compaction_failed);
  EXPECT_EQ(status.compacted_segments, 0u);
  EXPECT_EQ(wal::ReplayLog(wal_dir_).records.size(), records_before + 9);
  EXPECT_EQ(wal::ReplayLog(wal_dir_).first_lsn, 1u)
      << "a fail-stopped compactor removed segments";
}

}  // namespace
}  // namespace cfsf
