// Method shootout: run every predictor in the repository on one split and
// print an accuracy/latency league table — a minimal Table II/III in one
// binary.
//
//   ./method_shootout [--train=300] [--given=10] [--data=u.data]
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "baselines/aspect_model.hpp"
#include "baselines/emdp.hpp"
#include "baselines/means.hpp"
#include "baselines/mf.hpp"
#include "baselines/pd.hpp"
#include "baselines/scbpcc.hpp"
#include "baselines/sf.hpp"
#include "baselines/sir.hpp"
#include "baselines/slope_one.hpp"
#include "baselines/sur.hpp"
#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const auto train_users = static_cast<std::size_t>(args.GetInt("train", 300));
  const auto given = static_cast<std::size_t>(args.GetInt("given", 10));
  const std::string data_path = args.GetString("data", "");
  args.RejectUnknown();

  const data::Catalogue catalogue =
      data_path.empty() ? data::Catalogue() : data::Catalogue(data_path);
  const data::EvalSplit split = catalogue.Split(train_users, given);

  std::vector<std::unique_ptr<eval::Predictor>> predictors;
  predictors.push_back(std::make_unique<core::CfsfModel>());
  predictors.push_back(std::make_unique<baselines::SurPredictor>());
  predictors.push_back(std::make_unique<baselines::SirPredictor>());
  predictors.push_back(std::make_unique<baselines::SfPredictor>());
  predictors.push_back(std::make_unique<baselines::ScbpccPredictor>());
  predictors.push_back(std::make_unique<baselines::EmdpPredictor>());
  predictors.push_back(std::make_unique<baselines::PdPredictor>());
  predictors.push_back(std::make_unique<baselines::AspectModelPredictor>());
  predictors.push_back(std::make_unique<baselines::SlopeOnePredictor>());
  predictors.push_back(std::make_unique<baselines::MfPredictor>());
  predictors.push_back(std::make_unique<baselines::UserMeanPredictor>());
  predictors.push_back(std::make_unique<baselines::ItemMeanPredictor>());
  predictors.push_back(std::make_unique<baselines::GlobalMeanPredictor>());

  util::Table table({"Method", "MAE", "RMSE", "Fit (s)", "Predict (s)"});
  std::printf("split: %s / %s — %zu test ratings\n\n",
              data::TrainSetLabel(train_users).c_str(),
              data::GivenLabel(given).c_str(), split.test.size());
  for (auto& predictor : predictors) {
    const eval::EvalResult r = eval::Evaluate(*predictor, split);
    table.AddRow({predictor->Name(), util::FormatFixed(r.mae, 3),
                  util::FormatFixed(r.rmse, 3),
                  util::FormatFixed(r.fit_seconds, 2),
                  util::FormatFixed(r.predict_seconds, 2)});
    std::printf("done: %s\n", predictor->Name().c_str());
  }
  std::printf("\n%s", table.ToAligned().c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
