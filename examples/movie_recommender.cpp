// Movie recommender: the workload the paper's introduction motivates — an
// online service answering "what should this user watch next?".
//
// Demonstrates the top-N recommendation API, the per-user neighbour cache
// (second request for the same user is nearly free) and the fusion
// breakdown for explainability.
//
//   ./movie_recommender [--user=310] [--topn=10] [--data=u.data]
#include <cstdio>
#include <exception>

#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const auto topn = static_cast<std::size_t>(args.GetInt("topn", 10));
  const std::string data_path = args.GetString("data", "");
  auto user_flag = args.GetInt("user", -1);
  args.RejectUnknown();

  const data::Catalogue catalogue =
      data_path.empty() ? data::Catalogue() : data::Catalogue(data_path);
  const data::EvalSplit split = catalogue.Split(300, 20);

  core::CfsfModel model;
  model.Fit(split.train);

  // Default to an active (GivenN) user — the interesting cold-ish case.
  const matrix::UserId user =
      user_flag >= 0 ? static_cast<matrix::UserId>(user_flag)
                     : split.active_users.front();
  std::printf("user %u has rated %zu items (mean %.2f), cluster %u\n", user,
              model.train().UserRatingCount(user), model.train().UserMean(user),
              model.cluster_model().ClusterOf(user));

  // First request: pays for the top-K like-minded user selection.
  util::Stopwatch cold;
  const auto recs = model.RecommendTopN(user, topn);
  const double cold_ms = cold.ElapsedMillis();

  std::printf("\ntop-%zu recommendations:\n", topn);
  for (const auto& rec : recs) {
    const auto parts = model.PredictDetailed(user, rec.item);
    std::printf("  item %-5u score %.3f  (SIR' %s  SUR' %s  SUIR' %s)\n",
                rec.item, rec.score,
                parts.sir ? std::to_string(*parts.sir).substr(0, 5).c_str() : "--",
                parts.sur ? std::to_string(*parts.sur).substr(0, 5).c_str() : "--",
                parts.suir ? std::to_string(*parts.suir).substr(0, 5).c_str() : "--");
  }

  // Second request: served from the neighbour cache.
  util::Stopwatch warm;
  (void)model.RecommendTopN(user, topn);
  std::printf("\nfirst request %.1f ms, cached repeat %.1f ms (cache size %zu)\n",
              cold_ms, warm.ElapsedMillis(), model.CacheSize());

  // The like-minded users behind these recommendations.
  std::printf("\ntop like-minded users (Eq. 10):\n");
  std::size_t shown = 0;
  for (const auto& n : model.SelectTopKUsers(user)) {
    std::printf("  user %-4u similarity %.3f\n", n.user, n.similarity);
    if (++shown == 5) break;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
