// Incremental updates: the paper's "keep GIS up-to-date" future-work item.
//
// A live recommender keeps receiving ratings.  This example inserts new
// ratings into a fitted model one at a time, showing that (a) the affected
// GIS row is refreshed in place, (b) predictions react to the new
// evidence, and (c) the per-user caches are invalidated — all without
// re-running K-means or rebuilding the full GIS.
//
//   ./incremental_updates
#include <cstdio>
#include <exception>

#include "core/cfsf.hpp"
#include "util/stopwatch.hpp"

int main() try {
  using namespace cfsf;
  const data::Catalogue catalogue;
  const data::EvalSplit split = catalogue.Split(300, 10);

  core::CfsfModel model;
  util::Stopwatch fit_watch;
  model.Fit(split.train);
  std::printf("full offline phase: %.2fs\n", fit_watch.ElapsedSeconds());

  // Take an active user and one of their withheld ratings.
  const auto& probe = split.test.front();
  const double before = model.Predict(probe.user, probe.item);
  std::printf("\nuser %u, item %u: actual %.0f, predicted %.3f\n", probe.user,
              probe.item, static_cast<double>(probe.actual), before);

  // The user now tells us some of their real opinions: feed the next few
  // withheld ratings (except the probe itself) into the model.
  std::size_t inserted = 0;
  util::Stopwatch update_watch;
  for (const auto& t : split.test) {
    if (t.user != probe.user || t.item == probe.item) continue;
    model.InsertRating(t.user, t.item, t.actual);
    if (++inserted == 5) break;
  }
  std::printf("inserted %zu ratings in %.2fs (incremental path: GIS row "
              "refresh + re-smoothing, no re-clustering)\n",
              inserted, update_watch.ElapsedSeconds());

  const double after = model.Predict(probe.user, probe.item);
  std::printf("prediction after updates: %.3f (was %.3f, actual %.0f)\n",
              after, before, static_cast<double>(probe.actual));
  std::printf("|error| before %.3f -> after %.3f\n",
              std::abs(before - probe.actual), std::abs(after - probe.actual));

  // Compare against the cost of the sledgehammer alternative.
  util::Stopwatch refit_watch;
  model.Fit(model.train());
  std::printf("\nfull refit for comparison: %.2fs\n",
              refit_watch.ElapsedSeconds());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
