// Cold start: a brand-new user signs up, rates a handful of movies, and
// gets recommendations immediately — without re-running the offline phase.
//
// Demonstrates CfsfModel::AddUser (cluster assignment via Eq. 9, in-place
// GIS refresh) and how recommendation quality grows as the newcomer keeps
// rating (InsertRating).
//
//   ./cold_start [--ratings=5]
#include <algorithm>
#include <cstdio>
#include <exception>
#include <vector>

#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const auto initial = static_cast<std::size_t>(args.GetInt("ratings", 5));
  args.RejectUnknown();

  // Train on the full catalogue matrix; hold one user's taste profile
  // aside to play the newcomer (we reuse an active user's hidden ratings
  // as "what they would actually think").
  const data::Catalogue catalogue;
  const data::EvalSplit split = catalogue.Split(300, 20);
  core::CfsfModel model;
  model.Fit(split.train);

  // The newcomer's ground truth: an active user's withheld ratings.
  const auto donor = split.active_users.front();
  std::vector<std::pair<matrix::ItemId, matrix::Rating>> truth;
  for (const auto& t : split.test) {
    if (t.user == donor) truth.emplace_back(t.item, t.actual);
  }
  std::printf("newcomer ground truth: %zu hidden opinions\n", truth.size());

  // Sign-up: rate the first few items.
  std::vector<std::pair<matrix::ItemId, matrix::Rating>> first(
      truth.begin(), truth.begin() + std::min(initial, truth.size()));
  util::Stopwatch signup;
  const auto user = model.AddUser(first);
  std::printf("registered user %u with %zu ratings in %.0f ms (cluster %u)\n",
              user, first.size(), signup.ElapsedMillis(),
              model.cluster_model().ClusterOf(user));

  // Measure MAE on the remaining hidden opinions as the user rates more.
  auto measure = [&](const char* tag) {
    eval::ErrorAccumulator acc;
    for (std::size_t k = first.size(); k < truth.size(); ++k) {
      const double p = std::clamp(model.Predict(user, truth[k].first), 1.0, 5.0);
      acc.Add(p, truth[k].second);
    }
    std::printf("  %-18s MAE %.3f over %zu items\n", tag, acc.Mae(), acc.count());
  };
  measure("after sign-up");

  // The user rates a few more movies during the first week.
  std::size_t fed = first.size();
  for (std::size_t step = 0; step < 2; ++step) {
    const std::size_t batch = std::min<std::size_t>(5, truth.size() - fed);
    for (std::size_t k = 0; k < batch; ++k, ++fed) {
      model.InsertRating(user, truth[fed].first, truth[fed].second);
    }
    char tag[32];
    std::snprintf(tag, sizeof(tag), "after %zu ratings", fed);
    // Only score items never fed to the model.
    eval::ErrorAccumulator acc;
    for (std::size_t k = fed; k < truth.size(); ++k) {
      const double p = std::clamp(model.Predict(user, truth[k].first), 1.0, 5.0);
      acc.Add(p, truth[k].second);
    }
    std::printf("  %-18s MAE %.3f over %zu items\n", tag, acc.Mae(), acc.count());
  }

  std::printf("\ntop-5 recommendations for the newcomer:\n");
  for (const auto& rec : model.RecommendTopN(user, 5)) {
    std::printf("  item %-5u predicted %.2f\n", rec.item, rec.score);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
