// Offline/online deployment split: the paper runs the "computer-intensive"
// offline phase "in the backend" (Section IV-A).  This example plays both
// roles — a trainer process that fits and persists the model, and a
// serving process that loads the bundle and answers requests without
// touching K-means or the GIS build.
//
//   ./offline_online_split [--model=/tmp/cfsf.bin]
#include <cstdio>
#include <exception>

#include "core/cfsf.hpp"
#include "core/model_io.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const std::string model_path = args.GetString("model", "/tmp/cfsf_model.bin");
  args.RejectUnknown();

  const data::Catalogue catalogue;
  const data::EvalSplit split = catalogue.Split(300, 10);

  // --- Trainer process -----------------------------------------------
  {
    core::CfsfModel model;
    util::Stopwatch fit_watch;
    model.Fit(split.train);
    std::printf("[trainer] offline phase: %.2fs\n", fit_watch.ElapsedSeconds());
    util::Stopwatch save_watch;
    core::SaveModel(model, model_path);
    std::printf("[trainer] model saved to %s in %.0f ms\n", model_path.c_str(),
                save_watch.ElapsedMillis());
  }

  // --- Serving process -----------------------------------------------
  {
    util::Stopwatch load_watch;
    const auto model = core::LoadModel(model_path);
    std::printf("[server]  model loaded in %.0f ms (no K-means, no GIS "
                "rebuild)\n", load_watch.ElapsedMillis());

    const auto result = eval::EvaluateFitted(*model, split.test);
    std::printf("[server]  %zu predictions, MAE %.3f, %.2fs online\n",
                result.num_predictions, result.mae, result.predict_seconds);

    // Spot-check: a loaded model must answer exactly like a fresh fit.
    core::CfsfModel fresh;
    fresh.Fit(split.train);
    const auto& probe = split.test.front();
    std::printf("[server]  spot check: loaded %.6f vs fresh %.6f\n",
                model->Predict(probe.user, probe.item),
                fresh.Predict(probe.user, probe.item));
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
