// Parameter tuning: sweep one CFSF parameter while reusing the offline
// phase where possible — how a practitioner would pick M, K, lambda,
// delta or w for their own dataset (Figures 2, 3, 6, 7, 8 in miniature).
//
//   ./parameter_tuning --param=lambda [--train=300] [--given=10]
//   params: m, k, lambda, delta, w
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const std::string param = args.GetString("param", "lambda");
  const auto train_users = static_cast<std::size_t>(args.GetInt("train", 300));
  const auto given = static_cast<std::size_t>(args.GetInt("given", 10));
  args.RejectUnknown();

  const data::Catalogue catalogue;
  const data::EvalSplit split = catalogue.Split(train_users, given);

  util::Table table({param, "MAE", "RMSE"});

  // lambda and delta only touch the fusion weights, and m only changes how
  // much of each (already sorted) GIS row is read — so one fitted model
  // serves the whole sweep.  k and w change the user-selection similarity
  // and therefore need a cache reset (w) or re-selection (k); both still
  // reuse the fitted offline artefacts via config mutation per run.
  auto run_with = [&](core::CfsfConfig config) {
    core::CfsfModel model(config);
    model.Fit(split.train);
    return eval::EvaluateFitted(model, split.test);
  };

  if (param == "lambda" || param == "delta") {
    for (double v = 0.0; v <= 1.0 + 1e-9; v += 0.1) {
      core::CfsfConfig config;
      (param == "lambda" ? config.lambda : config.delta) = v;
      const auto r = run_with(config);
      table.AddRow({util::FormatFixed(v, 1), util::FormatFixed(r.mae, 4),
                    util::FormatFixed(r.rmse, 4)});
    }
  } else if (param == "w") {
    for (double v = 0.1; v <= 0.9 + 1e-9; v += 0.1) {
      core::CfsfConfig config;
      config.epsilon = v;
      const auto r = run_with(config);
      table.AddRow({util::FormatFixed(v, 1), util::FormatFixed(r.mae, 4),
                    util::FormatFixed(r.rmse, 4)});
    }
  } else if (param == "m" || param == "k") {
    for (std::size_t v = 10; v <= 100; v += 10) {
      core::CfsfConfig config;
      (param == "m" ? config.top_m_items : config.top_k_users) = v;
      const auto r = run_with(config);
      table.AddRow({std::to_string(v), util::FormatFixed(r.mae, 4),
                    util::FormatFixed(r.rmse, 4)});
    }
  } else {
    std::fprintf(stderr, "unknown --param=%s (use m, k, lambda, delta, w)\n",
                 param.c_str());
    return 2;
  }

  std::printf("sweep of %s on %s/%s:\n\n%s", param.c_str(),
              data::TrainSetLabel(train_users).c_str(),
              data::GivenLabel(given).c_str(), table.ToAligned().c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
