// Quickstart: generate (or load) a MovieLens-style dataset, run CFSF's
// offline phase once, and answer online prediction requests.
//
//   ./quickstart                       # synthetic MovieLens substitute
//   ./quickstart --data=path/to/u.data # real MovieLens
#include <cstdio>
#include <exception>

#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const std::string data_path = args.GetString("data", "");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 20090101));
  args.RejectUnknown();

  // 1. Dataset: the catalogue reproduces the paper's protocol — 300
  //    training users (ML_300), 200 active users revealing 10 ratings
  //    each (Given10).
  const data::Catalogue catalogue =
      data_path.empty() ? data::Catalogue(seed) : data::Catalogue(data_path);
  const data::EvalSplit split = catalogue.Split(/*train_users=*/300,
                                                /*given_n=*/10);
  std::printf("dataset: %zu users x %zu items, %zu ratings (density %.2f%%)\n",
              split.train.num_users(), split.train.num_items(),
              split.train.num_ratings(), split.train.Density() * 100.0);

  // 2. Offline phase (Algorithm 1, lines 4-8) with the paper's defaults:
  //    C=30, M=95, K=25, lambda=0.8, delta=0.1, w=0.35.
  core::CfsfModel model;
  util::Stopwatch offline;
  model.Fit(split.train);
  std::printf("offline phase: %.2fs (GIS entries: %zu)\n",
              offline.ElapsedSeconds(), model.gis().TotalNeighbors());

  // 3. Online phase: predict the withheld ratings of the active users.
  util::Stopwatch online;
  const eval::EvalResult result = eval::EvaluateFitted(model, split.test);
  std::printf("online phase:  %.2fs for %zu predictions (%.1f us each)\n",
              online.ElapsedSeconds(), result.num_predictions,
              1e6 * online.ElapsedSeconds() /
                  static_cast<double>(result.num_predictions));
  std::printf("MAE  = %.3f\nRMSE = %.3f\n", result.mae, result.rmse);

  // 4. Single ad-hoc request with the fusion breakdown (Eq. 12-14).
  const auto& probe = split.test.front();
  const core::FusionBreakdown parts = model.PredictDetailed(probe.user, probe.item);
  std::printf("\nexample request: user %u, item %u (actual %.0f)\n", probe.user,
              probe.item, static_cast<double>(probe.actual));
  if (parts.sir) std::printf("  SIR'  = %.3f\n", *parts.sir);
  if (parts.sur) std::printf("  SUR'  = %.3f\n", *parts.sur);
  if (parts.suir) std::printf("  SUIR' = %.3f\n", *parts.suir);
  std::printf("  SR' (fused) = %.3f\n", parts.fused);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
