// Batch throughput: serving a recommendation queue with PredictBatch —
// the paper's "improve its scalability in a parallel manner" future-work
// item.  PredictBatch groups queries by user (one top-K selection per
// user, reused for all their items) and fans the groups out over the
// shared thread pool; set CFSF_NUM_THREADS to control the pool.
//
//   ./batch_throughput [--repeat=3]
#include <cstdio>
#include <exception>
#include <vector>

#include "core/cfsf.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace cfsf;
  util::ArgParser args(argc, argv);
  const auto repeat = static_cast<std::size_t>(args.GetInt("repeat", 3));
  args.RejectUnknown();

  const data::Catalogue catalogue;
  const data::EvalSplit split = catalogue.Split(300, 20);
  core::CfsfModel model;
  model.Fit(split.train);

  std::vector<std::pair<matrix::UserId, matrix::ItemId>> queue;
  queue.reserve(split.test.size());
  for (const auto& t : split.test) queue.emplace_back(t.user, t.item);
  std::printf("request queue: %zu predictions for %zu users\n", queue.size(),
              split.active_users.size());

  // One-at-a-time serving (cold cache each round, like fresh traffic).
  double loop_seconds = 0.0;
  for (std::size_t r = 0; r < repeat; ++r) {
    model.ClearCache();
    util::Stopwatch watch;
    double checksum = 0.0;
    for (const auto& [user, item] : queue) checksum += model.Predict(user, item);
    loop_seconds += watch.ElapsedSeconds();
    (void)checksum;
  }
  loop_seconds /= static_cast<double>(repeat);

  // Batched serving.
  double batch_seconds = 0.0;
  std::vector<double> batch_results;
  for (std::size_t r = 0; r < repeat; ++r) {
    model.ClearCache();
    util::Stopwatch watch;
    batch_results = model.PredictBatch(queue);
    batch_seconds += watch.ElapsedSeconds();
  }
  batch_seconds /= static_cast<double>(repeat);

  // The two paths must agree exactly.
  model.ClearCache();
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < queue.size(); ++k) {
    if (batch_results[k] != model.Predict(queue[k].first, queue[k].second)) {
      ++mismatches;
    }
  }

  const double n = static_cast<double>(queue.size());
  std::printf("one-at-a-time: %.0f ms (%.1f us/query)\n", loop_seconds * 1e3,
              loop_seconds * 1e6 / n);
  std::printf("PredictBatch:  %.0f ms (%.1f us/query, %zu mismatches)\n",
              batch_seconds * 1e3, batch_seconds * 1e6 / n, mismatches);
  std::printf("note: on a single-core host the batch path shows dispatch "
              "overhead instead of speedup; the grouping still saves one "
              "top-K selection per repeated user either way.\n");
  return mismatches == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
