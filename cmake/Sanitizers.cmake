# Sanitizer wiring for CFSF.
#
# CFSF_SANITIZE is a semicolon-separated list drawn from
#   address | undefined | thread | leak
# e.g. -DCFSF_SANITIZE="address;undefined".  ThreadSanitizer cannot be
# combined with AddressSanitizer or LeakSanitizer (the runtimes conflict),
# and that combination is rejected at configure time rather than producing
# a binary that aborts on startup.
#
# All sanitized builds keep frame pointers (usable stack traces) and make
# UndefinedBehaviorSanitizer non-recoverable, so any UB report fails the
# offending test instead of scrolling past — "zero sanitizer reports" is
# then enforced by ctest's exit status.
#
# Suppression files live in cmake/suppressions/; tests get them through
# the CFSF_SANITIZER_TEST_ENV list applied in tests/CMakeLists.txt, and
# tools/ci_check.sh exports the same variables for manual runs.

set(CFSF_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable: address;undefined;thread;leak")

set(CFSF_SANITIZER_TEST_ENV "" CACHE INTERNAL "Env vars for sanitized test runs")

if(CFSF_SANITIZE)
  set(_cfsf_known_sanitizers address undefined thread leak)
  foreach(_san IN LISTS CFSF_SANITIZE)
    if(NOT _san IN_LIST _cfsf_known_sanitizers)
      message(FATAL_ERROR
          "CFSF_SANITIZE: unknown sanitizer '${_san}' "
          "(expected a subset of: ${_cfsf_known_sanitizers})")
    endif()
  endforeach()

  if("thread" IN_LIST CFSF_SANITIZE AND
     ("address" IN_LIST CFSF_SANITIZE OR "leak" IN_LIST CFSF_SANITIZE))
    message(FATAL_ERROR
        "CFSF_SANITIZE: 'thread' cannot be combined with 'address'/'leak' — "
        "the sanitizer runtimes are mutually exclusive")
  endif()

  string(REPLACE ";" "," _cfsf_sanitize_csv "${CFSF_SANITIZE}")
  set(_cfsf_san_flags -fsanitize=${_cfsf_sanitize_csv} -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST CFSF_SANITIZE)
    # Abort on the first UB report; without this UBSan logs and continues,
    # and ctest would report a pass despite diagnostics.
    list(APPEND _cfsf_san_flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_cfsf_san_flags})
  add_link_options(${_cfsf_san_flags})

  set(_cfsf_supp_dir "${CMAKE_CURRENT_LIST_DIR}/suppressions")
  set(_cfsf_test_env "")
  if("thread" IN_LIST CFSF_SANITIZE)
    list(APPEND _cfsf_test_env
         "TSAN_OPTIONS=suppressions=${_cfsf_supp_dir}/tsan.supp halt_on_error=1 second_deadlock_stack=1")
  endif()
  if("undefined" IN_LIST CFSF_SANITIZE)
    list(APPEND _cfsf_test_env
         "UBSAN_OPTIONS=suppressions=${_cfsf_supp_dir}/ubsan.supp print_stacktrace=1")
  endif()
  if("address" IN_LIST CFSF_SANITIZE)
    # detect_leaks stays on (default); strict_string_checks hardens the
    # C-string paths in the data loaders.
    list(APPEND _cfsf_test_env "ASAN_OPTIONS=strict_string_checks=1")
  endif()
  set(CFSF_SANITIZER_TEST_ENV "${_cfsf_test_env}" CACHE INTERNAL
      "Env vars for sanitized test runs")

  message(STATUS "CFSF: sanitizers enabled: ${CFSF_SANITIZE}")
endif()
